//! FRAGMENT — unreliable but *persistent* bulk transfer.
//!
//! The bottom layer of the layered Sprite RPC decomposition, designed to be
//! reusable ("a bulk transfer protocol that can be reused by other
//! protocols", e.g. Psync and the Sun RPC recomposition):
//!
//! * Each message pushed through FRAGMENT gets a unique sequence number, is
//!   split into ≤16 fragments (one bit each in the 16-bit `frag_mask`), and
//!   is transmitted with a copy retained by the sender.
//! * **Unreliable**: messages may arrive out of order, duplicated, or not at
//!   all; the receiver *never* sends a positive acknowledgement. That
//!   choice — made precisely so Psync could reuse the layer — is the
//!   paper's worked example of choosing decomposition semantics.
//! * **Persistent**: a receiver that detects missing fragments (a gap timer
//!   after the last arrival) sends a NACK naming the missing bits, and the
//!   sender retransmits just those fragments from its retained copy.
//! * The sender discards its copy on a timer; a higher-level retransmission
//!   arriving later is a *new* FRAGMENT message with a new sequence number.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use xkernel::prelude::*;
use xkernel::sim::Nanos;

use crate::hdr::{frag_type, FragmentHdr, FRAGMENT_HDR_LEN};
use crate::protnum::rel_proto_num;

/// Maximum fragments per message (one bit each in `frag_mask`).
pub const MAX_FRAGS: usize = 16;

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct FragConfig {
    /// How long the sender retains a transmitted message for NACK service.
    pub discard_ns: Nanos,
    /// Receiver gap timer: how long after the most recent fragment before
    /// concluding some are missing.
    pub gap_ns: Nanos,
    /// How many NACKs to send before giving up on an incomplete message.
    pub nack_retries: u32,
    /// Bound on retained messages (protects inline mode, where discard
    /// timers never fire).
    pub cache_cap: usize,
}

impl Default for FragConfig {
    fn default() -> FragConfig {
        FragConfig {
            discard_ns: 500_000_000,
            gap_ns: 10_000_000,
            nack_retries: 4,
            cache_cap: 64,
        }
    }
}

/// Cumulative traffic counters (tests and benchmarks).
#[derive(Clone, Copy, Debug, Default)]
pub struct FragStats {
    /// Messages pushed through FRAGMENT by upper protocols.
    pub messages_sent: u64,
    /// Data fragments put on the wire (including NACK-driven resends).
    pub fragments_sent: u64,
    /// Complete messages delivered upward.
    pub messages_delivered: u64,
    /// NACKs this host sent (missing-fragment requests).
    pub nacks_sent: u64,
    /// NACKs this host received and serviced.
    pub nacks_received: u64,
}

#[derive(Default)]
struct Counters {
    messages_sent: AtomicU64,
    fragments_sent: AtomicU64,
    messages_delivered: AtomicU64,
    nacks_sent: AtomicU64,
    nacks_received: AtomicU64,
}

struct Saved {
    msg: Message,
    dst: IpAddr,
    proto_num: u32,
    num_frags: u16,
    frag_size: usize,
}

struct Rasm {
    num_frags: u16,
    have_mask: u16,
    proto_num: u32,
    total_len: u16,
    parts: Vec<Option<Message>>,
    nacks_left: u32,
    timer_armed: bool,
    /// When the most recent fragment arrived: a gap is only declared after
    /// the wire has been quiet for the full gap interval, so a long
    /// transmission still in progress is never NACKed.
    last_arrival: u64,
}

/// The FRAGMENT protocol object.
pub struct Fragment {
    weak_self: Weak<Fragment>,
    me: ProtoId,
    lower: ProtoId,
    cfg: FragConfig,
    my_ip: OnceLock<IpAddr>,
    lower_name: OnceLock<&'static str>,
    base_frag_size: OnceLock<usize>,
    next_seq: Mutex<u32>,
    enables: Mutex<HashMap<u32, ProtoId>>,
    // Retained sent messages, insertion-ordered for LRU eviction.
    send_cache: Mutex<Vec<(u32, Saved)>>,
    rasm: Mutex<HashMap<(u32, u32), Rasm>>,
    passive: Mutex<HashMap<(u32, u32), SessionRef>>,
    lowers: Mutex<HashMap<u32, (SessionRef, usize)>>,
    counters: Counters,
}

impl Fragment {
    /// Creates FRAGMENT above `lower` (an IP-addressed delivery protocol:
    /// IP, VIP, or VIPADDR).
    pub fn new(me: ProtoId, lower: ProtoId, cfg: FragConfig) -> Arc<Fragment> {
        Arc::new_cyclic(|weak_self| Fragment {
            weak_self: weak_self.clone(),
            me,
            lower,
            cfg,
            my_ip: OnceLock::new(),
            lower_name: OnceLock::new(),
            base_frag_size: OnceLock::new(),
            next_seq: Mutex::new(0),
            enables: Mutex::new(HashMap::new()),
            send_cache: Mutex::new(Vec::new()),
            rasm: Mutex::new(HashMap::new()),
            passive: Mutex::new(HashMap::new()),
            lowers: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        })
    }

    fn self_arc(&self) -> Arc<Fragment> {
        self.weak_self.upgrade().expect("fragment alive")
    }

    fn my_ip(&self) -> IpAddr {
        *self.my_ip.get().expect("fragment booted")
    }

    fn my_rel_num(&self) -> XResult<u32> {
        rel_proto_num(self.lower_name.get().expect("fragment booted"), "fragment")
    }

    /// The lower session (and its fragment payload size) towards `peer`.
    fn lower_for(&self, ctx: &Ctx, peer: IpAddr) -> XResult<(SessionRef, usize)> {
        if let Some(hit) = self.lowers.lock().get(&peer.0) {
            return Ok(hit.clone());
        }
        let parts = ParticipantSet::pair(
            Participant::proto(self.my_rel_num()?),
            Participant::host(peer),
        );
        let sess = ctx.kernel().open(ctx, self.lower, self.me, &parts)?;
        let opt = sess
            .control(ctx, &ControlOp::GetOptPacket)
            .and_then(|r| r.size())
            .unwrap_or(1500);
        let frag_size = opt - FRAGMENT_HDR_LEN;
        self.lowers
            .lock()
            .insert(peer.0, (Arc::clone(&sess), frag_size));
        Ok((sess, frag_size))
    }

    /// Splits `msg` (zero-copy) into its fragments under `frag_size`.
    fn split(msg: &Message, frag_size: usize) -> Vec<Message> {
        let mut rest = msg.clone();
        let mut out = Vec::new();
        while rest.len() > frag_size {
            let tail = rest
                .split_off(frag_size)
                .expect("split within checked length");
            out.push(std::mem::replace(&mut rest, tail));
        }
        out.push(rest);
        out
    }

    /// Transmits the fragments of `saved` selected by `mask`.
    fn transmit(
        &self,
        ctx: &Ctx,
        lower: &SessionRef,
        saved: &Saved,
        seq: u32,
        mask: u16,
    ) -> XResult<()> {
        let frags = Self::split(&saved.msg, saved.frag_size);
        for (i, frag) in frags.into_iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let hdr = FragmentHdr {
                typ: frag_type::DATA,
                clnt_host: self.my_ip(),
                srvr_host: saved.dst,
                protocol_num: saved.proto_num,
                sequence_num: seq,
                num_frags: saved.num_frags,
                frag_mask: 1 << i,
                len: saved.msg.len() as u16,
            };
            let mut pkt = frag;
            ctx.push_header(&mut pkt, &hdr.encode());
            ctx.charge_layer_call();
            self.counters.fragments_sent.fetch_add(1, Ordering::Relaxed);
            lower.push(ctx, pkt)?;
        }
        Ok(())
    }

    /// Sends `msg` to `peer` on behalf of high-level protocol `proto_num`.
    fn send(&self, ctx: &Ctx, peer: IpAddr, proto_num: u32, msg: Message) -> XResult<()> {
        let (lower, frag_size) = self.lower_for(ctx, peer)?;
        let num_frags = msg.len().max(1).div_ceil(frag_size);
        if num_frags > MAX_FRAGS {
            return Err(XError::TooBig {
                size: msg.len(),
                max: MAX_FRAGS * frag_size,
            });
        }
        // The wire header carries the total length in a u16; over a lower
        // layer with a huge MTU, 16 fragments can exceed 65535 bytes and the
        // `as u16` encode would silently truncate, corrupting reassembly on
        // the far side. Refuse such messages up front.
        if msg.len() > u16::MAX as usize {
            return Err(XError::TooBig {
                size: msg.len(),
                max: (u16::MAX as usize).min(MAX_FRAGS * frag_size),
            });
        }
        let seq = {
            let mut s = self.next_seq.lock();
            *s = s.wrapping_add(1);
            *s
        };
        self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
        // Sequence allocation + retained-copy bookkeeping.
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let saved = Saved {
            msg,
            dst: peer,
            proto_num,
            num_frags: num_frags as u16,
            frag_size,
        };
        let full_mask = if num_frags == 16 {
            u16::MAX
        } else {
            (1u16 << num_frags) - 1
        };
        self.transmit(ctx, &lower, &saved, seq, full_mask)?;

        // Retain a copy for NACK service, bounded and timed.
        {
            let mut cache = self.send_cache.lock();
            cache.push((seq, saved));
            let cap = self.cfg.cache_cap;
            if cache.len() > cap {
                let excess = cache.len() - cap;
                cache.drain(..excess);
            }
        }
        let parent = self.self_arc();
        ctx.schedule_after(self.cfg.discard_ns, move |_tctx| {
            parent.send_cache.lock().retain(|(s, _)| *s != seq);
        });
        Ok(())
    }

    fn deliver_up(&self, ctx: &Ctx, from: IpAddr, proto_num: u32, msg: Message) -> XResult<()> {
        self.counters
            .messages_delivered
            .fetch_add(1, Ordering::Relaxed);
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let upper = self
            .enables
            .lock()
            .get(&proto_num)
            .copied()
            .ok_or_else(|| XError::NoEnable(format!("fragment proto {proto_num}")))?;
        let sess = {
            let mut cache = self.passive.lock();
            match cache.get(&(from.0, proto_num)) {
                Some(s) => Arc::clone(s),
                None => {
                    ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
                    let s: SessionRef = Arc::new(FragSession {
                        parent: self.self_arc(),
                        peer: from,
                        proto_num,
                    });
                    cache.insert((from.0, proto_num), Arc::clone(&s));
                    s
                }
            }
        };
        ctx.kernel().demux_to(ctx, upper, &sess, msg)
    }

    fn arm_gap_timer(&self, ctx: &Ctx, key: (u32, u32)) {
        let parent = self.self_arc();
        ctx.schedule_after(self.cfg.gap_ns, move |tctx| {
            parent.on_gap_timer(tctx, key);
        });
    }

    fn on_gap_timer(&self, ctx: &Ctx, key: (u32, u32)) {
        let nack = {
            let mut rasm = self.rasm.lock();
            let Some(ent) = rasm.get_mut(&key) else {
                return; // Completed meanwhile.
            };
            ent.timer_armed = false;
            // Fragments still flowing: not a gap, just a long message.
            if ctx.now().saturating_sub(ent.last_arrival) < self.cfg.gap_ns {
                ent.timer_armed = true;
                drop(rasm);
                self.arm_gap_timer(ctx, key);
                return;
            }
            let full = if ent.num_frags as usize == 16 {
                u16::MAX
            } else {
                (1u16 << ent.num_frags) - 1
            };
            let missing = full & !ent.have_mask;
            if missing == 0 {
                return;
            }
            if ent.nacks_left == 0 {
                rasm.remove(&key);
                ctx.trace_note("reassembly persistence exhausted");
                return;
            }
            ent.nacks_left -= 1;
            ent.timer_armed = true;
            Some((ent.proto_num, ent.num_frags, missing, ent.total_len))
        };
        if let Some((proto_num, num_frags, missing, len)) = nack {
            let from = IpAddr(key.0);
            let hdr = FragmentHdr {
                typ: frag_type::NACK,
                clnt_host: from,
                srvr_host: self.my_ip(),
                protocol_num: proto_num,
                sequence_num: key.1,
                num_frags,
                frag_mask: missing,
                len,
            };
            if let Ok((lower, _)) = self.lower_for(ctx, from) {
                let mut pkt = ctx.empty_msg();
                ctx.push_header(&mut pkt, &hdr.encode());
                ctx.charge_layer_call();
                self.counters.nacks_sent.fetch_add(1, Ordering::Relaxed);
                if lower.push(ctx, pkt).is_err() {
                    ctx.trace_note("nack send failed");
                }
            }
            self.arm_gap_timer(ctx, key);
        }
    }

    fn data_in(&self, ctx: &Ctx, hdr: FragmentHdr, mut msg: Message) -> XResult<()> {
        // Single-fragment fast path: no state, no timers. Trim any
        // link-level padding with the header's total-length field.
        if hdr.num_frags <= 1 {
            msg.truncate(usize::from(hdr.len));
            return self.deliver_up(ctx, hdr.clnt_host, hdr.protocol_num, msg);
        }
        let key = (hdr.clnt_host.0, hdr.sequence_num);
        let complete = {
            let mut rasm = self.rasm.lock();
            let ent = rasm.entry(key).or_insert_with(|| Rasm {
                num_frags: hdr.num_frags,
                have_mask: 0,
                proto_num: hdr.protocol_num,
                total_len: hdr.len,
                parts: (0..hdr.num_frags).map(|_| None).collect(),
                nacks_left: self.cfg.nack_retries,
                timer_armed: false,
                last_arrival: 0,
            });
            ent.last_arrival = ctx.now();
            let idx = hdr.frag_mask.trailing_zeros() as usize;
            if idx >= ent.parts.len() {
                return Ok(()); // Corrupt index; drop.
            }
            if ent.parts[idx].is_none() {
                ent.parts[idx] = Some(msg);
                ent.have_mask |= 1 << idx;
            }
            let full = if ent.num_frags as usize == 16 {
                u16::MAX
            } else {
                (1u16 << ent.num_frags) - 1
            };
            if ent.have_mask == full {
                let parts = std::mem::take(&mut ent.parts);
                let proto = ent.proto_num;
                rasm.remove(&key);
                Some((proto, parts))
            } else {
                if !ent.timer_armed {
                    ent.timer_armed = true;
                    drop(rasm);
                    self.arm_gap_timer(ctx, key);
                }
                None
            }
        };
        match complete {
            Some((proto, parts)) => {
                let mut whole = Message::concat(parts.into_iter().flatten());
                // Only the final fragment can carry pad bytes, and they sit
                // at the very end of the reassembled message.
                whole.truncate(usize::from(hdr.len));
                self.deliver_up(ctx, hdr.clnt_host, proto, whole)
            }
            None => Ok(()),
        }
    }

    fn nack_in(&self, ctx: &Ctx, hdr: FragmentHdr) -> XResult<()> {
        self.counters.nacks_received.fetch_add(1, Ordering::Relaxed);
        let seq = hdr.sequence_num;
        let found = {
            let cache = self.send_cache.lock();
            cache.iter().any(|(s, _)| *s == seq)
        };
        if !found {
            // Already discarded: the higher-level protocol's own timeout
            // will resend the whole message under a new sequence number.
            ctx.trace_note("nack for discarded seq");
            return Ok(());
        }
        // Retransmit the missing fragments from the retained copy.
        let (dst, mask) = {
            let cache = self.send_cache.lock();
            let (_, saved) = cache
                .iter()
                .find(|(s, _)| *s == seq)
                .expect("checked above");
            (saved.dst, hdr.frag_mask)
        };
        let (lower, _) = self.lower_for(ctx, dst)?;
        let cache = self.send_cache.lock();
        if let Some((_, saved)) = cache.iter().find(|(s, _)| *s == seq) {
            // Rebuild fragment list and send the requested ones. We must not
            // hold the cache lock across pushes — clone the needed state.
            let saved_copy = Saved {
                msg: saved.msg.clone(),
                dst: saved.dst,
                proto_num: saved.proto_num,
                num_frags: saved.num_frags,
                frag_size: saved.frag_size,
            };
            drop(cache);
            self.transmit(ctx, &lower, &saved_copy, seq, mask)?;
        }
        Ok(())
    }

    /// Observable state for tests: retained send-cache size.
    pub fn retained(&self) -> usize {
        self.send_cache.lock().len()
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> FragStats {
        FragStats {
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            fragments_sent: self.counters.fragments_sent.load(Ordering::Relaxed),
            messages_delivered: self.counters.messages_delivered.load(Ordering::Relaxed),
            nacks_sent: self.counters.nacks_sent.load(Ordering::Relaxed),
            nacks_received: self.counters.nacks_received.load(Ordering::Relaxed),
        }
    }

    /// Observable state for tests: open reassembly buffers.
    pub fn reassembling(&self) -> usize {
        self.rasm.lock().len()
    }
}

/// A FRAGMENT session towards one (peer, high-level protocol).
pub struct FragSession {
    parent: Arc<Fragment>,
    peer: IpAddr,
    proto_num: u32,
}

impl Session for FragSession {
    fn protocol_id(&self) -> ProtoId {
        self.parent.me
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        self.parent.send(ctx, self.peer, self.proto_num, msg)?;
        Ok(None)
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetMaxPacket => {
                let (_, frag_size) = self.parent.lower_for(ctx, self.peer)?;
                Ok(ControlRes::Size(MAX_FRAGS * frag_size))
            }
            ControlOp::GetOptPacket => {
                let (_, frag_size) = self.parent.lower_for(ctx, self.peer)?;
                Ok(ControlRes::Size(frag_size))
            }
            ControlOp::GetFragCount(size) => {
                let (_, frag_size) = self.parent.lower_for(ctx, self.peer)?;
                Ok(ControlRes::Size(size.max(&1).div_ceil(frag_size)))
            }
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            ControlOp::GetMyHost => Ok(ControlRes::Ip(self.parent.my_ip())),
            _ => Err(XError::Unsupported("fragment session control")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for Fragment {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::fragment()
    }

    fn name(&self) -> &'static str {
        "fragment"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let kernel = ctx.kernel();
        let lower = kernel.proto(self.lower)?;
        self.lower_name
            .set(lower.name())
            .map_err(|_| XError::Config("fragment double boot".into()))?;
        let my_ip = lower.control(ctx, &ControlOp::GetMyHost)?.ip()?;
        self.my_ip
            .set(my_ip)
            .map_err(|_| XError::Config("fragment double boot".into()))?;
        let opt = lower
            .control(ctx, &ControlOp::GetOptPacket)
            .and_then(|r| r.size())
            .unwrap_or(1500);
        let _ = self.base_frag_size.set(opt - FRAGMENT_HDR_LEN);
        // Receive our own packets.
        let parts = ParticipantSet::local(Participant::proto(self.my_rel_num()?));
        kernel.open_enable(ctx, self.lower, self.me, &parts)
    }

    fn reboot(&self, _ctx: &Ctx) -> XResult<()> {
        // Drop volatile state: the send cache (peers must not NACK-recover
        // messages from the previous incarnation), partial reassemblies,
        // and cached sessions. `next_seq` is deliberately kept — reusing
        // message ids could collide with stale partials on peers.
        self.send_cache.lock().clear();
        self.rasm.lock().clear();
        self.passive.lock().clear();
        self.lowers.lock().clear();
        Ok(())
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let proto_num = parts
            .local_part()
            .and_then(|p| p.proto_num)
            .ok_or_else(|| XError::Config("fragment open needs a protocol number".into()))?;
        let peer = parts
            .remote_part()
            .and_then(|p| p.host)
            .ok_or_else(|| XError::Config("fragment open needs a peer host".into()))?;
        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        Ok(Arc::new(FragSession {
            parent: self.self_arc(),
            peer,
            proto_num,
        }))
    }

    fn open_enable(&self, _ctx: &Ctx, upper: ProtoId, parts: &ParticipantSet) -> XResult<()> {
        let proto_num = parts
            .local_part()
            .and_then(|p| p.proto_num)
            .ok_or_else(|| XError::Config("fragment enable needs a protocol number".into()))?;
        self.enables.lock().insert(proto_num, upper);
        Ok(())
    }

    fn demux(&self, ctx: &Ctx, _lls: &SessionRef, mut msg: Message) -> XResult<()> {
        let bytes = ctx.pop_header(&mut msg, FRAGMENT_HDR_LEN)?;
        let hdr = FragmentHdr::decode(&bytes)?;
        drop(bytes);
        match hdr.typ {
            frag_type::DATA => self.data_in(ctx, hdr, msg),
            frag_type::NACK => self.nack_in(ctx, hdr),
            _ => {
                ctx.trace_note("unknown fragment type");
                Ok(())
            }
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        let frag_size = *self
            .base_frag_size
            .get()
            .unwrap_or(&(1500 - FRAGMENT_HDR_LEN));
        match op {
            ControlOp::GetMaxPacket => Ok(ControlRes::Size(MAX_FRAGS * frag_size)),
            ControlOp::GetOptPacket => Ok(ControlRes::Size(frag_size)),
            ControlOp::GetFragCount(size) => Ok(ControlRes::Size(size.max(&1).div_ceil(frag_size))),
            // Asked by VIP: FRAGMENT never pushes more than one lower packet
            // at a time (it has its own fragmentation).
            ControlOp::GetMaxMsgSize => Ok(ControlRes::Size(frag_size + FRAGMENT_HDR_LEN)),
            ControlOp::GetMyHost => Ok(ControlRes::Ip(self.my_ip())),
            _ => {
                let _ = ctx;
                Err(XError::Unsupported("fragment control"))
            }
        }
    }

    // The send cache and partial reassemblies are timer-reclaimed and thus
    // empty at any quiescent instant; what persists is the sequence
    // counter, enables, session caches, and traffic counters.
    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        debug_assert!(
            self.send_cache.lock().is_empty() && self.rasm.lock().is_empty(),
            "fragment snapshot with retained/partial messages (not quiescent)"
        );
        Some(Arc::new(FragSnap {
            next_seq: *self.next_seq.lock(),
            enables: self.enables.lock().clone(),
            passive: self.passive.lock().clone(),
            lowers: self.lowers.lock().clone(),
            stats: self.stats(),
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<FragSnap>(blob, "fragment")?;
        self.send_cache.lock().clear();
        self.rasm.lock().clear();
        *self.next_seq.lock() = s.next_seq;
        *self.enables.lock() = s.enables.clone();
        *self.passive.lock() = s.passive.clone();
        *self.lowers.lock() = s.lowers.clone();
        self.counters
            .messages_sent
            .store(s.stats.messages_sent, Ordering::Relaxed);
        self.counters
            .fragments_sent
            .store(s.stats.fragments_sent, Ordering::Relaxed);
        self.counters
            .messages_delivered
            .store(s.stats.messages_delivered, Ordering::Relaxed);
        self.counters
            .nacks_sent
            .store(s.stats.nacks_sent, Ordering::Relaxed);
        self.counters
            .nacks_received
            .store(s.stats.nacks_received, Ordering::Relaxed);
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[derive(Clone)]
struct FragSnap {
    next_seq: u32,
    enables: HashMap<u32, ProtoId>,
    passive: HashMap<(u32, u32), SessionRef>,
    lowers: HashMap<u32, (SessionRef, usize)>,
    stats: FragStats,
}

#[cfg(test)]
mod tests {
    use std::any::Any;

    use super::*;
    use xkernel::sim::{Sim, SimConfig};

    /// A stand-in lower layer masquerading as VIP with an oversized MTU, so
    /// 16 fragments can span more than 65535 bytes.
    struct BigMtuLower {
        me: ProtoId,
        opt: usize,
    }

    struct BigMtuSession {
        opt: usize,
    }

    impl Protocol for BigMtuLower {
        fn name(&self) -> &'static str {
            "vip"
        }
        fn id(&self) -> ProtoId {
            self.me
        }
        fn open(&self, _c: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<SessionRef> {
            Ok(Arc::new(BigMtuSession { opt: self.opt }))
        }
        fn open_enable(&self, _c: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<()> {
            Ok(())
        }
        fn demux(&self, _c: &Ctx, _l: &SessionRef, _m: Message) -> XResult<()> {
            Ok(())
        }
        fn control(&self, _c: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
            match op {
                ControlOp::GetMyHost => Ok(ControlRes::Ip(IpAddr::new(10, 0, 0, 1))),
                ControlOp::GetOptPacket => Ok(ControlRes::Size(self.opt)),
                _ => Err(XError::Unsupported("big-mtu lower control")),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    impl Session for BigMtuSession {
        fn protocol_id(&self) -> ProtoId {
            ProtoId(0)
        }
        fn push(&self, _c: &Ctx, _m: Message) -> XResult<Option<Message>> {
            Ok(None)
        }
        fn control(&self, _c: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
            match op {
                ControlOp::GetOptPacket => Ok(ControlRes::Size(self.opt)),
                _ => Err(XError::Unsupported("big-mtu session control")),
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    /// Regression: with a lower MTU large enough that 16 fragments exceed
    /// 65535 bytes, the wire header's u16 `len` field used to truncate
    /// silently (`as u16`), corrupting reassembly. Such sends must be
    /// refused with `TooBig`, while sends within u16 range still work.
    #[test]
    fn sends_beyond_u16_total_length_are_rejected() {
        let sim = Sim::new(SimConfig::inline_mode());
        let kernel = Kernel::new(&sim, "host-a");
        let opt = 8_192;
        let lower = kernel
            .register("vip", |me| {
                Ok(Arc::new(BigMtuLower { me, opt }) as ProtocolRef)
            })
            .unwrap();
        let frag_id = kernel
            .register("fragment", |me| {
                Ok(Fragment::new(me, lower, FragConfig::default()) as ProtocolRef)
            })
            .unwrap();
        let ctx = sim.ctx(kernel.host());
        let frag = kernel.proto(frag_id).unwrap();
        frag.boot(&ctx).unwrap();

        let parts = ParticipantSet::pair(
            Participant::proto(7),
            Participant::host(IpAddr::new(10, 0, 0, 2)),
        );
        let sess = kernel.open(&ctx, frag_id, frag_id, &parts).unwrap();

        // 60_000 bytes: 8 fragments of ~8k, total within u16 — accepted.
        sess.push(&ctx, ctx.msg(vec![0u8; 60_000])).unwrap();

        // 70_000 bytes: only 9 fragments (passes the 16-fragment cap) but
        // the total cannot be carried in the u16 length field.
        let err = sess.push(&ctx, ctx.msg(vec![0u8; 70_000])).unwrap_err();
        assert!(
            matches!(err, XError::TooBig { size: 70_000, .. }),
            "oversized send must be refused, got {err:?}"
        );
    }
}
