//! CHANNEL — request/reply transactions with at-most-once semantics.
//!
//! The middle layer of the layered Sprite RPC decomposition. Each channel is
//! a separate session; a high-level protocol pushes a request into it and
//! the reply message is returned from `push`. The algorithm is Sprite's
//! (implicit acknowledgement, after Birrell & Nelson):
//!
//! * the receipt of a reply acknowledges the request;
//! * the receipt of a new request on a channel acknowledges the previous
//!   reply (the server may then discard its saved copy);
//! * a retransmitted request for work in progress elicits an explicit ACK
//!   so the client stops resending;
//! * a retransmitted request matching the last completed sequence number
//!   elicits a retransmission of the saved reply;
//! * boot ids detect peer reincarnation and reset sequence state.
//!
//! CHANNEL's timeout is the paper's *step function*: for single-fragment
//! messages it is short, while for multi-fragment messages it asks the layer
//! below (`GetFragCount`) and waits "long enough to be sure that the
//! fragmentation layer is not in the middle of transmitting the message".

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use xkernel::prelude::*;
use xkernel::sim::Nanos;

use crate::hdr::{flags, ChannelHdr, CHANNEL_HDR_LEN};
use crate::protnum::{peer_key, rel_proto_num, PeerKey};
use crate::rto::{backoff_rto, RtoEstimator};

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ChanConfig {
    /// Timeout for single-fragment requests.
    pub base_timeout_ns: Nanos,
    /// Extra wait per additional fragment the layer below must move.
    pub per_frag_ns: Nanos,
    /// Retransmissions before giving up.
    pub max_retries: u32,
    /// Adaptive SRTT/RTTVAR retransmission timeout (see [`crate::rto`]).
    /// When false, the paper's fixed step function times every attempt.
    pub adaptive: bool,
    /// Floor for the adaptive RTO.
    pub min_rto_ns: Nanos,
    /// Ceiling for the adaptive RTO (also caps exponential backoff).
    pub max_rto_ns: Nanos,
}

impl Default for ChanConfig {
    fn default() -> ChanConfig {
        ChanConfig {
            base_timeout_ns: 100_000_000,
            per_frag_ns: 25_000_000,
            max_retries: 8,
            adaptive: true,
            min_rto_ns: 1_000_000,
            max_rto_ns: 10_000_000_000,
        }
    }
}

struct Outstanding {
    seq: u32,
    sema: SharedSema,
    reply: Option<Result<Message, u16>>,
    acked: bool,
    sent_at: u64,
}

/// Default cap on consecutive exponential-backoff doublings; the
/// `SetBackoff` control op overrides it until the next reboot.
const DEFAULT_MAX_BACKOFF: u32 = 6;

/// Run-time-tunable knobs (the `SetTimeout` / `SetBackoff` control ops).
struct Tunables {
    base_timeout_ns: AtomicU64,
    peer_boot: AtomicU32,
    adaptive: AtomicBool,
    max_backoff: AtomicU32,
}

struct ClientState {
    seq: u32,
    outstanding: Option<Outstanding>,
}

/// A client channel: one outstanding RPC at a time.
pub struct ChanClientSession {
    parent: Arc<Channel>,
    chan: u16,
    proto_num: u32,
    peer: IpAddr,
    lower: SessionRef,
    st: Mutex<ClientState>,
}

impl ChanClientSession {
    /// The size-dependent component of the paper's step function: extra
    /// wait for each additional fragment the layer below must move. RTT
    /// samples are taken on whatever traffic runs first, so the adaptive
    /// RTO keeps this allowance too — a warm estimate from small exchanges
    /// must not time a multi-fragment transfer.
    fn frag_allowance(&self, ctx: &Ctx, wire_len: usize) -> Nanos {
        let frags = self
            .lower
            .control(ctx, &ControlOp::GetFragCount(wire_len))
            .and_then(|r| r.size())
            .unwrap_or(1);
        self.parent.cfg.per_frag_ns * (frags.saturating_sub(1) as u64)
    }
}

impl Session for ChanClientSession {
    fn protocol_id(&self) -> ProtoId {
        self.parent.me
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        let (seq, sema) = {
            let mut st = self.st.lock();
            if st.outstanding.is_some() {
                return Err(XError::Config(format!(
                    "channel {} already has an outstanding request",
                    self.chan
                )));
            }
            st.seq = st.seq.wrapping_add(1);
            let sema = SharedSema::new(0);
            st.outstanding = Some(Outstanding {
                seq: st.seq,
                sema: sema.clone(),
                reply: None,
                acked: false,
                sent_at: ctx.now(),
            });
            (st.seq, sema)
        };

        let boot_id = self.parent.boot_id();
        let mut hdr = ChannelHdr {
            flags: flags::REQUEST,
            channel: self.chan,
            protocol_num: self.proto_num,
            sequence_num: seq,
            error: 0,
            boot_id,
        };
        let extra = self.frag_allowance(ctx, msg.len() + CHANNEL_HDR_LEN);
        let step = self.parent.tunables.base_timeout_ns.load(Ordering::Relaxed) + extra;
        let adaptive = self.parent.tunables.adaptive.load(Ordering::Relaxed);
        let max_backoff = self.parent.tunables.max_backoff.load(Ordering::Relaxed);
        let mut attempts = 0u32;
        loop {
            let timeout = if adaptive {
                // The step function seeds the estimator's cold state, so
                // attempt 0 of a fresh conversation waits exactly as long
                // as the paper's fixed scheme; once samples arrive the RTO
                // tracks measured RTT (plus the per-fragment allowance).
                // Retries back off exponentially with jitter (drawn only
                // here, keeping fault-free runs on the same PRNG stream as
                // the fixed scheme).
                let base = {
                    let e = self.parent.estimator.lock();
                    if e.is_cold() {
                        step
                    } else {
                        e.rto() + extra
                    }
                };
                let jitter = if attempts > 0 { ctx.next_u64() } else { 0 };
                backoff_rto(
                    base,
                    attempts,
                    max_backoff,
                    self.parent.cfg.max_rto_ns,
                    jitter,
                )
            } else {
                step
            };
            let mut wire = msg.clone();
            ctx.push_header(&mut wire, &hdr.encode());
            ctx.charge_layer_call();
            if let Err(e) = self.lower.push(ctx, wire) {
                // A synchronous lower-layer failure (e.g. ARP could not
                // resolve the peer) must not leave the channel poisoned
                // with a forever-outstanding request.
                self.st.lock().outstanding = None;
                return Err(e);
            }

            // Wait for the reply; an explicit ACK re-arms the wait without
            // counting as a retransmission round.
            let outcome = loop {
                let _signalled = sema.p_timeout(ctx, timeout);
                let mut st = self.st.lock();
                let out = st
                    .outstanding
                    .as_mut()
                    .expect("outstanding present until we clear it");
                if let Some(r) = out.reply.take() {
                    let sent_at = out.sent_at;
                    st.outstanding = None;
                    break Some((r, sent_at));
                }
                if out.acked {
                    out.acked = false;
                    if ctx.mode() == Mode::Inline {
                        // Inline mode cannot wait again; treat as timeout.
                        break None;
                    }
                    continue; // Server is alive and working: wait again.
                }
                break None;
            };
            match outcome {
                Some((Ok(reply), sent_at)) => {
                    // Karn's rule: a reply that followed a retransmission
                    // cannot be attributed to a particular send, so only
                    // clean exchanges feed the estimator.
                    if attempts == 0 {
                        self.parent.observe_rtt(ctx.now().saturating_sub(sent_at));
                    }
                    return Ok(Some(reply));
                }
                Some((Err(code), _)) => {
                    return Err(XError::Remote(format!(
                        "channel {} request {seq}: server error {code}",
                        self.chan
                    )))
                }
                None => ctx.note(RobustEvent::TimeoutFired),
            }
            attempts += 1;
            if attempts > self.parent.cfg.max_retries || ctx.mode() == Mode::Inline {
                self.st.lock().outstanding = None;
                return Err(XError::Timeout(format!(
                    "channel {} request {seq} to {} after {attempts} attempts",
                    self.chan, self.peer
                )));
            }
            // Retransmission: ask for an explicit ack so a busy server can
            // quiet us down.
            ctx.note(RobustEvent::Retransmit);
            hdr.flags = flags::REQUEST | flags::PLEASE_ACK;
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            ControlOp::GetRtt => Ok(ControlRes::U64(self.parent.rtt_estimate())),
            ControlOp::GetMyBootId => Ok(ControlRes::U32(self.parent.boot_id())),
            ControlOp::GetPeerBootId => Ok(ControlRes::U32(
                self.parent.tunables.peer_boot.load(Ordering::Relaxed),
            )),
            ControlOp::SetTimeout(ns) => {
                self.parent
                    .tunables
                    .base_timeout_ns
                    .store(*ns, Ordering::Relaxed);
                Ok(ControlRes::Done)
            }
            ControlOp::SetBackoff(n) => {
                self.parent
                    .tunables
                    .max_backoff
                    .store(*n, Ordering::Relaxed);
                Ok(ControlRes::Done)
            }
            other => self.lower.control(ctx, other),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct ServerState {
    last_boot: u32,
    last_seq: u32,
    in_progress: Option<u32>,
    saved_reply: Option<(u32, Message)>,
}

/// A server channel: tracks at-most-once state for one (peer, channel).
pub struct ChanServerSession {
    parent: Arc<Channel>,
    chan: u16,
    proto_num: u32,
    // The lower session replies travel down on; refreshed on each request
    // so replies follow the path the latest request arrived by.
    lls: Mutex<SessionRef>,
    st: Mutex<ServerState>,
}

impl Session for ChanServerSession {
    fn protocol_id(&self) -> ProtoId {
        self.parent.me
    }

    /// The high-level protocol pushes the *reply* into the server channel.
    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        let seq = {
            let mut st = self.st.lock();
            st.in_progress.take().ok_or_else(|| {
                XError::Config(format!("channel {}: reply without request", self.chan))
            })?
        };
        let hdr = ChannelHdr {
            flags: flags::REPLY,
            channel: self.chan,
            protocol_num: self.proto_num,
            sequence_num: seq,
            error: 0,
            boot_id: self.parent.boot_id(),
        };
        let mut wire = msg;
        ctx.push_header(&mut wire, &hdr.encode());
        {
            let mut st = self.st.lock();
            st.last_seq = seq;
            // Retain the encoded reply until implicitly acknowledged by the
            // next request on this channel.
            st.saved_reply = Some((seq, wire.clone()));
        }
        let lls = Arc::clone(&self.lls.lock());
        ctx.charge_layer_call();
        lls.push(ctx, wire)?;
        Ok(None)
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetMyBootId => Ok(ControlRes::U32(self.parent.boot_id())),
            // An overloaded upper layer dropped the request it was just
            // handed (shepherd pool full, Drop policy): clear the
            // in-progress slot so the client's retransmission is delivered
            // again instead of being acknowledged as still-working.
            ControlOp::Custom("chan_abort", _) => {
                self.st.lock().in_progress = None;
                Ok(ControlRes::Done)
            }
            other => {
                let lls = Arc::clone(&self.lls.lock());
                lls.control(ctx, other)
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The CHANNEL protocol object.
pub struct Channel {
    weak_self: Weak<Channel>,
    me: ProtoId,
    lower: ProtoId,
    cfg: ChanConfig,
    tunables: Tunables,
    lower_name: OnceLock<&'static str>,
    boot: Mutex<u32>,
    next_chan: Mutex<u16>,
    estimator: Mutex<RtoEstimator>,
    enables: Mutex<HashMap<u32, ProtoId>>,
    clients: Mutex<HashMap<(u16, u32), Arc<ChanClientSession>>>,
    servers: Mutex<HashMap<(PeerKey, u16, u32), Arc<ChanServerSession>>>,
}

impl Channel {
    /// Creates CHANNEL above `lower` (FRAGMENT, a virtual protocol, IP, or
    /// raw ETH — anything that can move one packet unreliably).
    pub fn new(me: ProtoId, lower: ProtoId, cfg: ChanConfig) -> Arc<Channel> {
        Arc::new_cyclic(|weak_self| Channel {
            weak_self: weak_self.clone(),
            me,
            lower,
            tunables: Tunables {
                base_timeout_ns: AtomicU64::new(cfg.base_timeout_ns),
                peer_boot: AtomicU32::new(0),
                adaptive: AtomicBool::new(cfg.adaptive),
                max_backoff: AtomicU32::new(DEFAULT_MAX_BACKOFF),
            },
            cfg,
            lower_name: OnceLock::new(),
            boot: Mutex::new(0),
            next_chan: Mutex::new(0),
            estimator: Mutex::new(RtoEstimator::new(
                cfg.base_timeout_ns,
                cfg.min_rto_ns,
                cfg.max_rto_ns,
            )),
            enables: Mutex::new(HashMap::new()),
            clients: Mutex::new(HashMap::new()),
            servers: Mutex::new(HashMap::new()),
        })
    }

    fn self_arc(&self) -> Arc<Channel> {
        self.weak_self.upgrade().expect("channel alive")
    }

    /// This kernel's boot incarnation id.
    pub fn boot_id(&self) -> u32 {
        *self.boot.lock()
    }

    /// Overrides the boot id (tests simulate reboot/reincarnation).
    pub fn set_boot_id(&self, id: u32) {
        *self.boot.lock() = id;
    }

    /// Allocates a fresh, kernel-unique channel number. Skips numbers that
    /// still name a live client session: after 2^16 allocations the counter
    /// wraps, and handing out a channel with an exchange outstanding would
    /// alias two conversations onto one at-most-once state machine. Id 0 is
    /// never issued — fresh counters start above it, so a post-wrap 0 would
    /// be an id no other allocation path can produce.
    pub fn alloc_channel(&self) -> u16 {
        let mut c = self.next_chan.lock();
        let clients = self.clients.lock();
        for _ in 0..=u16::MAX as u32 {
            *c = c.wrapping_add(1);
            let cand = *c;
            if cand == 0 {
                continue;
            }
            if !clients.keys().any(|&(chan, _)| chan == cand) {
                return cand;
            }
        }
        // All 2^16 channel numbers live at once: structurally impossible
        // for bounded pools, but never hand out an aliased id silently.
        panic!("channel namespace exhausted");
    }

    fn observe_rtt(&self, sample: u64) {
        self.estimator.lock().observe(sample);
    }

    /// Smoothed round-trip estimate (virtual ns; 0 until the first reply).
    pub fn rtt_estimate(&self) -> u64 {
        let e = self.estimator.lock();
        if e.is_cold() {
            0
        } else {
            e.srtt()
        }
    }

    /// Switches between the adaptive RTO and the paper's fixed step
    /// function at run time (chaos experiments compare the two).
    pub fn set_adaptive(&self, on: bool) {
        self.tunables.adaptive.store(on, Ordering::Relaxed);
    }

    /// Current backoff-doubling cap, as `SetBackoff` last left it (resets
    /// to the default on reboot).
    pub fn max_backoff(&self) -> u32 {
        self.tunables.max_backoff.load(Ordering::Relaxed)
    }

    /// Whether the adaptive RTO is currently in effect (resets to the
    /// configured value on reboot).
    pub fn adaptive(&self) -> bool {
        self.tunables.adaptive.load(Ordering::Relaxed)
    }

    fn request_in(
        &self,
        ctx: &Ctx,
        lls: &SessionRef,
        hdr: ChannelHdr,
        msg: Message,
    ) -> XResult<()> {
        let pk = peer_key(ctx, lls)?;
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let sess = {
            let mut servers = self.servers.lock();
            match servers.get(&(pk, hdr.channel, hdr.protocol_num)) {
                Some(s) => {
                    *s.lls.lock() = Arc::clone(lls);
                    Arc::clone(s)
                }
                None => {
                    ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
                    let s = Arc::new(ChanServerSession {
                        parent: self.self_arc(),
                        chan: hdr.channel,
                        proto_num: hdr.protocol_num,
                        lls: Mutex::new(Arc::clone(lls)),
                        st: Mutex::new(ServerState {
                            last_boot: hdr.boot_id,
                            last_seq: 0,
                            in_progress: None,
                            saved_reply: None,
                        }),
                    });
                    servers.insert((pk, hdr.channel, hdr.protocol_num), Arc::clone(&s));
                    drop(servers);
                    // The open-done upcall: tell the high-level protocol a
                    // session was passively created on its behalf,
                    // completing its earlier open_enable.
                    if let Some(upper) = self.enables.lock().get(&hdr.protocol_num).copied() {
                        let parts = ParticipantSet::local(
                            Participant::proto(hdr.protocol_num).with_port(hdr.channel),
                        );
                        let sref: SessionRef = Arc::clone(&s) as SessionRef;
                        ctx.kernel().open_done(ctx, upper, self.me, &sref, &parts)?;
                    }
                    s
                }
            }
        };

        enum Action {
            Deliver,
            Ack,
            ResendReply(Message),
            Drop,
        }
        let action = {
            let mut st = sess.st.lock();
            if hdr.boot_id != st.last_boot {
                // Client reincarnated: reset at-most-once state.
                st.last_boot = hdr.boot_id;
                st.last_seq = 0;
                st.in_progress = None;
                st.saved_reply = None;
            }
            if st.in_progress == Some(hdr.sequence_num) {
                Action::Ack
            } else if st
                .saved_reply
                .as_ref()
                .is_some_and(|(s, _)| *s == hdr.sequence_num)
            {
                let (_, saved) = st.saved_reply.as_ref().expect("checked");
                Action::ResendReply(saved.clone())
            } else if hdr.sequence_num <= st.last_seq && st.last_seq != 0 {
                Action::Drop
            } else {
                // New request: implicitly acknowledges the previous reply.
                st.saved_reply = None;
                st.in_progress = Some(hdr.sequence_num);
                Action::Deliver
            }
        };

        match action {
            Action::Drop => {
                ctx.note(RobustEvent::DuplicateSuppressed);
                Ok(())
            }
            Action::Ack => {
                ctx.note(RobustEvent::DuplicateSuppressed);
                let ack = ChannelHdr {
                    flags: flags::ACK,
                    channel: hdr.channel,
                    protocol_num: hdr.protocol_num,
                    sequence_num: hdr.sequence_num,
                    error: 0,
                    boot_id: self.boot_id(),
                };
                let mut pkt = ctx.empty_msg();
                ctx.push_header(&mut pkt, &ack.encode());
                ctx.charge_layer_call();
                lls.push(ctx, pkt)?;
                Ok(())
            }
            Action::ResendReply(saved) => {
                ctx.note(RobustEvent::DuplicateSuppressed);
                ctx.charge_layer_call();
                lls.push(ctx, saved)?;
                Ok(())
            }
            Action::Deliver => {
                let upper = self.enables.lock().get(&hdr.protocol_num).copied();
                match upper {
                    Some(upper) => {
                        let sref: SessionRef = sess;
                        ctx.kernel().demux_to(ctx, upper, &sref, msg)
                    }
                    None => {
                        // No such service: answer with an error reply so the
                        // client fails fast instead of retransmitting.
                        sess.st.lock().in_progress = None;
                        let err = ChannelHdr {
                            flags: flags::REPLY,
                            channel: hdr.channel,
                            protocol_num: hdr.protocol_num,
                            sequence_num: hdr.sequence_num,
                            error: 1,
                            boot_id: self.boot_id(),
                        };
                        let mut pkt = ctx.empty_msg();
                        ctx.push_header(&mut pkt, &err.encode());
                        ctx.charge_layer_call();
                        lls.push(ctx, pkt)?;
                        Ok(())
                    }
                }
            }
        }
    }

    fn reply_or_ack_in(&self, ctx: &Ctx, hdr: ChannelHdr, msg: Message) -> XResult<()> {
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let client = self
            .clients
            .lock()
            .get(&(hdr.channel, hdr.protocol_num))
            .cloned();
        let Some(client) = client else {
            ctx.trace_note("reply for unknown channel");
            return Ok(());
        };
        // Peer reincarnation check, *before* taking this client's state
        // lock (the reset below locks the map and then each session; no
        // path may hold a session lock while acquiring the map's).
        let prev = self.tunables.peer_boot.swap(hdr.boot_id, Ordering::Relaxed);
        if prev != 0 && prev != hdr.boot_id {
            ctx.trace_note("peer rebooted");
            // Sequence numbers and RTT history from the old incarnation
            // are meaningless; reset every channel not mid-exchange.
            for c in self.clients.lock().values() {
                let mut cst = c.st.lock();
                if cst.outstanding.is_none() {
                    cst.seq = 0;
                }
            }
            self.estimator.lock().reset(self.cfg.base_timeout_ns);
        }
        let mut st = client.st.lock();
        let Some(out) = st.outstanding.as_mut() else {
            return Ok(()); // Late duplicate; already satisfied.
        };
        if out.seq != hdr.sequence_num {
            return Ok(()); // Stale sequence number.
        }
        if hdr.flags & flags::ACK != 0 {
            out.acked = true;
            let sema = out.sema.clone();
            drop(st);
            sema.v(ctx);
            return Ok(());
        }
        if out.reply.is_none() {
            out.reply = Some(if hdr.error != 0 {
                Err(hdr.error)
            } else {
                Ok(msg)
            });
            let sema = out.sema.clone();
            drop(st);
            sema.v(ctx);
        }
        Ok(())
    }
}

impl Protocol for Channel {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::channel()
    }

    fn name(&self) -> &'static str {
        "channel"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let kernel = ctx.kernel();
        let lower = kernel.proto(self.lower)?;
        self.lower_name
            .set(lower.name())
            .map_err(|_| XError::Config("channel double boot".into()))?;
        *self.boot.lock() = (ctx.next_u64() & 0xffff_ffff) as u32 | 1;
        let parts =
            ParticipantSet::local(Participant::proto(rel_proto_num(lower.name(), "channel")?));
        kernel.open_enable(ctx, self.lower, self.me, &parts)
    }

    fn reboot(&self, ctx: &Ctx) -> XResult<()> {
        // Fresh incarnation: a new boot id and no surviving channels; the
        // graph wiring (enables, lower binding) persists from build time.
        *self.boot.lock() = (ctx.next_u64() & 0xffff_ffff) as u32 | 1;
        self.clients.lock().clear();
        self.servers.lock().clear();
        self.tunables.peer_boot.store(0, Ordering::Relaxed);
        self.tunables
            .base_timeout_ns
            .store(self.cfg.base_timeout_ns, Ordering::Relaxed);
        // Every RTO knob re-cold-seeds, including the run-time overrides
        // (`SetBackoff` / `set_adaptive`): a fresh incarnation must not
        // inherit policy its config never specified.
        self.tunables
            .max_backoff
            .store(DEFAULT_MAX_BACKOFF, Ordering::Relaxed);
        self.tunables
            .adaptive
            .store(self.cfg.adaptive, Ordering::Relaxed);
        self.estimator.lock().reset(self.cfg.base_timeout_ns);
        Ok(())
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let proto_num = parts
            .local_part()
            .and_then(|p| p.proto_num)
            .ok_or_else(|| XError::Config("channel open needs a protocol number".into()))?;
        let peer = parts
            .remote_part()
            .and_then(|p| p.host)
            .ok_or_else(|| XError::Config("channel open needs a peer host".into()))?;
        let chan = match parts.local_part().and_then(|p| p.port) {
            Some(c) => c,
            None => self.alloc_channel(),
        };
        if let Some(s) = self.clients.lock().get(&(chan, proto_num)) {
            return Ok(Arc::clone(s) as SessionRef);
        }
        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        let lname = self.lower_name.get().expect("channel booted");
        let lparts = ParticipantSet::pair(
            Participant::proto(rel_proto_num(lname, "channel")?),
            Participant::host(peer),
        );
        let lower = ctx.kernel().open(ctx, self.lower, self.me, &lparts)?;
        let s = Arc::new(ChanClientSession {
            parent: self.self_arc(),
            chan,
            proto_num,
            peer,
            lower,
            st: Mutex::new(ClientState {
                seq: 0,
                outstanding: None,
            }),
        });
        self.clients
            .lock()
            .insert((chan, proto_num), Arc::clone(&s));
        Ok(s)
    }

    fn open_enable(&self, _ctx: &Ctx, upper: ProtoId, parts: &ParticipantSet) -> XResult<()> {
        let proto_num = parts
            .local_part()
            .and_then(|p| p.proto_num)
            .ok_or_else(|| XError::Config("channel enable needs a protocol number".into()))?;
        self.enables.lock().insert(proto_num, upper);
        Ok(())
    }

    fn demux(&self, ctx: &Ctx, lls: &SessionRef, mut msg: Message) -> XResult<()> {
        let bytes = ctx.pop_header(&mut msg, CHANNEL_HDR_LEN)?;
        let hdr = ChannelHdr::decode(&bytes)?;
        drop(bytes);
        if hdr.flags & flags::REQUEST != 0 {
            self.request_in(ctx, lls, hdr, msg)
        } else {
            self.reply_or_ack_in(ctx, hdr, msg)
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            // Asked by VIP: CHANNEL adds one header to whatever its user
            // pushes, and its users (SELECT) keep requests within one packet
            // when FRAGMENT is not below.
            ControlOp::GetMaxMsgSize => Ok(ControlRes::Size(1500)),
            ControlOp::GetMyBootId => Ok(ControlRes::U32(self.boot_id())),
            ControlOp::GetRtt => Ok(ControlRes::U64(self.rtt_estimate())),
            ControlOp::GetFragCount(n) => {
                ctx.kernel()
                    .control(ctx, self.lower, &ControlOp::GetFragCount(*n))
            }
            ControlOp::GetMaxPacket => {
                let r = ctx
                    .kernel()
                    .control(ctx, self.lower, &ControlOp::GetMaxPacket)?;
                Ok(ControlRes::Size(r.size()?.saturating_sub(CHANNEL_HDR_LEN)))
            }
            // The RTO knobs are protocol-wide (sessions store into the same
            // tunables), so policy sweeps can set them without a session.
            ControlOp::SetTimeout(ns) => {
                self.tunables.base_timeout_ns.store(*ns, Ordering::Relaxed);
                Ok(ControlRes::Done)
            }
            ControlOp::SetBackoff(n) => {
                self.tunables.max_backoff.store(*n, Ordering::Relaxed);
                Ok(ControlRes::Done)
            }
            _ => Err(XError::Unsupported("channel control")),
        }
    }

    // Sessions are captured *with* their mutable state: a client channel's
    // sequence counter and a server channel's at-most-once record (last
    // seq, saved reply) both advance during a run and must rewind with it.
    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        let clients = self
            .clients
            .lock()
            .iter()
            .map(|(k, c)| {
                let st = c.st.lock();
                debug_assert!(
                    st.outstanding.is_none(),
                    "channel snapshot with an outstanding request (not quiescent)"
                );
                (*k, (Arc::clone(c), st.seq))
            })
            .collect();
        let servers = self
            .servers
            .lock()
            .iter()
            .map(|(k, srv)| {
                let st = srv.st.lock();
                let snap = ServerSnap {
                    lls: Arc::clone(&srv.lls.lock()),
                    last_boot: st.last_boot,
                    last_seq: st.last_seq,
                    in_progress: st.in_progress,
                    saved_reply: st.saved_reply.clone(),
                };
                (*k, (Arc::clone(srv), snap))
            })
            .collect();
        Some(Arc::new(ChanSnap {
            boot: self.boot_id(),
            next_chan: *self.next_chan.lock(),
            estimator: self.estimator.lock().clone(),
            base_timeout_ns: self.tunables.base_timeout_ns.load(Ordering::Relaxed),
            peer_boot: self.tunables.peer_boot.load(Ordering::Relaxed),
            adaptive: self.tunables.adaptive.load(Ordering::Relaxed),
            max_backoff: self.tunables.max_backoff.load(Ordering::Relaxed),
            enables: self.enables.lock().clone(),
            clients,
            servers,
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<ChanSnap>(blob, "channel")?;
        *self.boot.lock() = s.boot;
        *self.next_chan.lock() = s.next_chan;
        *self.estimator.lock() = s.estimator.clone();
        self.tunables
            .base_timeout_ns
            .store(s.base_timeout_ns, Ordering::Relaxed);
        self.tunables
            .peer_boot
            .store(s.peer_boot, Ordering::Relaxed);
        self.tunables.adaptive.store(s.adaptive, Ordering::Relaxed);
        self.tunables
            .max_backoff
            .store(s.max_backoff, Ordering::Relaxed);
        *self.enables.lock() = s.enables.clone();
        {
            let mut clients = self.clients.lock();
            clients.clear();
            for (k, (sess, seq)) in &s.clients {
                let mut st = sess.st.lock();
                st.seq = *seq;
                st.outstanding = None;
                clients.insert(*k, Arc::clone(sess));
            }
        }
        {
            let mut servers = self.servers.lock();
            servers.clear();
            for (k, (sess, snap)) in &s.servers {
                *sess.lls.lock() = Arc::clone(&snap.lls);
                let mut st = sess.st.lock();
                st.last_boot = snap.last_boot;
                st.last_seq = snap.last_seq;
                st.in_progress = snap.in_progress;
                st.saved_reply = snap.saved_reply.clone();
                servers.insert(*k, Arc::clone(sess));
            }
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct ServerSnap {
    lls: SessionRef,
    last_boot: u32,
    last_seq: u32,
    in_progress: Option<u32>,
    saved_reply: Option<(u32, Message)>,
}

struct ChanSnap {
    boot: u32,
    next_chan: u16,
    estimator: RtoEstimator,
    base_timeout_ns: u64,
    peer_boot: u32,
    adaptive: bool,
    max_backoff: u32,
    enables: HashMap<u32, ProtoId>,
    clients: HashMap<(u16, u32), (Arc<ChanClientSession>, u32)>,
    servers: HashMap<(PeerKey, u16, u32), (Arc<ChanServerSession>, ServerSnap)>,
}
