//! SELECT — procedure selection, channel allocation, and dispatch.
//!
//! The top layer of the layered Sprite RPC decomposition: it "maps Sprite
//! commands (procedure ids) onto procedure addresses (server processes)"
//! and owns the performance-critical caching. Because Sprite has a fixed,
//! predefined number of channels, SELECT keeps a fixed pool of CHANNEL
//! sessions per server and *blocks* the calling shepherd when none are free.
//!
//! SELECT is a separate protocol (rather than being folded into CHANNEL)
//! exactly so that alternative selection policies can be substituted; this
//! module also provides the paper's two examples:
//!
//! * a *forwarding* selection layer — commands can be redirected to another
//!   host, transparently to the client ([`Select::set_forward`]);
//! * [`Rdgram`], the "trivial to build" reliable datagram protocol on top
//!   of CHANNEL.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::{Mutex, RwLock};

use xkernel::prelude::*;
use xkernel::shepherd::{Overload, ShepherdConfig, ShepherdStats, Shepherds, Submitted};

use crate::hdr::{SelectHdr, SELECT_HDR_LEN};
use crate::protnum::rel_proto_num;

/// A server procedure: takes the request body, returns the reply body.
pub type Handler = Box<dyn Fn(&Ctx, Message) -> XResult<Message> + Send + Sync>;

/// Reply status codes carried in [`SelectHdr::status`].
pub mod status {
    /// Success.
    pub const OK: u8 = 0;
    /// The procedure raised an error.
    pub const PROC_ERROR: u8 = 1;
    /// No such procedure registered.
    pub const NO_SUCH_PROC: u8 = 2;
    /// Forwarding to the backing host failed.
    pub const FORWARD_FAILED: u8 = 3;
    /// All shepherds busy and the pending queue full ([`Overload::Reject`]).
    pub const BUSY: u8 = 4;
}

/// Header type values.
const TYP_REQUEST: u8 = 0;
const TYP_REPLY: u8 = 1;

/// Configuration.
#[derive(Clone, Copy, Debug)]
pub struct SelectConfig {
    /// CHANNEL sessions kept per server host (Sprite's fixed channel set).
    pub channels_per_peer: usize,
    /// Server-side shepherd pool (workers == 0 keeps dispatch synchronous).
    pub shepherds: ShepherdConfig,
}

impl Default for SelectConfig {
    fn default() -> SelectConfig {
        SelectConfig {
            channels_per_peer: 8,
            shepherds: ShepherdConfig::default(),
        }
    }
}

/// A fixed pool of client channels towards one server.
struct ChanPool {
    sema: SharedSema,
    free: Mutex<Vec<SessionRef>>,
}

/// The SELECT protocol object.
pub struct Select {
    weak_self: Weak<Select>,
    me: ProtoId,
    channel: ProtoId,
    cfg: SelectConfig,
    handlers: RwLock<HashMap<u16, Handler>>,
    forward: Mutex<HashMap<u16, IpAddr>>,
    pools: Mutex<HashMap<u32, Arc<ChanPool>>>,
    sessions: Mutex<HashMap<(u32, u16), SessionRef>>,
    passive_opens: AtomicU64,
    shepherds: Arc<Shepherds>,
}

impl Select {
    /// Creates SELECT above the CHANNEL protocol `channel`.
    pub fn new(me: ProtoId, channel: ProtoId, cfg: SelectConfig) -> Arc<Select> {
        Arc::new_cyclic(|weak_self| Select {
            weak_self: weak_self.clone(),
            me,
            channel,
            cfg,
            handlers: RwLock::new(HashMap::new()),
            forward: Mutex::new(HashMap::new()),
            pools: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            passive_opens: AtomicU64::new(0),
            shepherds: Shepherds::new(cfg.shepherds),
        })
    }

    /// Shepherd-pool counters (zeros while the pool is disabled).
    pub fn shepherd_stats(&self) -> ShepherdStats {
        self.shepherds.stats()
    }

    /// Current depth of the shepherd pending queue.
    pub fn shepherd_queue_depth(&self) -> usize {
        self.shepherds.queue_depth()
    }

    fn self_arc(&self) -> Arc<Select> {
        self.weak_self.upgrade().expect("select alive")
    }

    /// Registers the procedure for `command`.
    pub fn serve<F>(&self, command: u16, f: F)
    where
        F: Fn(&Ctx, Message) -> XResult<Message> + Send + Sync + 'static,
    {
        self.handlers.write().insert(command, Box::new(f));
    }

    /// Redirects `command` to `host` — the alternative *forwarding*
    /// selection policy.
    pub fn set_forward(&self, command: u16, host: IpAddr) {
        self.forward.lock().insert(command, host);
    }

    /// Number of currently free channels towards `peer` (tests; None until
    /// the pool exists).
    pub fn free_channels(&self, peer: IpAddr) -> Option<usize> {
        self.pools.lock().get(&peer.0).map(|p| p.free.lock().len())
    }

    /// How many server channels CHANNEL has passively created on our
    /// behalf (reported through the open-done upcall).
    pub fn passive_opens(&self) -> u64 {
        self.passive_opens.load(Ordering::Relaxed)
    }

    fn pool_for(&self, ctx: &Ctx, peer: IpAddr) -> XResult<Arc<ChanPool>> {
        if let Some(p) = self.pools.lock().get(&peer.0) {
            return Ok(Arc::clone(p));
        }
        // Open the fixed channel set outside the pools lock.
        let my_num = rel_proto_num("channel", "select")?;
        let mut sessions = Vec::with_capacity(self.cfg.channels_per_peer);
        for _ in 0..self.cfg.channels_per_peer {
            let parts = ParticipantSet::pair(Participant::proto(my_num), Participant::host(peer));
            sessions.push(ctx.kernel().open(ctx, self.channel, self.me, &parts)?);
        }
        let pool = Arc::new(ChanPool {
            sema: SharedSema::new(self.cfg.channels_per_peer as i64),
            free: Mutex::new(sessions),
        });
        Ok(Arc::clone(self.pools.lock().entry(peer.0).or_insert(pool)))
    }

    /// The full client path: allocate a channel (blocking if none free),
    /// attach the SELECT header, push through CHANNEL, decode the reply.
    fn call(&self, ctx: &Ctx, peer: IpAddr, command: u16, args: Message) -> XResult<Message> {
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup); // Channel-pool lookup.
        let pool = self.pool_for(ctx, peer)?;
        pool.sema.p(ctx); // Blocks when all channels are busy.
        let chan = pool
            .free
            .lock()
            .pop()
            .expect("semaphore guarantees a free channel");

        let result = (|| {
            let hdr = SelectHdr {
                typ: TYP_REQUEST,
                command,
                status: status::OK,
            };
            let mut wire = args;
            ctx.push_header(&mut wire, &hdr.encode());
            ctx.charge_layer_call();
            let reply = chan
                .push(ctx, wire)?
                .ok_or_else(|| XError::Config("channel returned no reply".into()))?;
            let mut reply = reply;
            let bytes = ctx.pop_header(&mut reply, SELECT_HDR_LEN)?;
            let rh = SelectHdr::decode(&bytes)?;
            drop(bytes);
            match rh.status {
                status::OK => Ok(reply),
                status::NO_SUCH_PROC => {
                    Err(XError::Remote(format!("no procedure {command} on {peer}")))
                }
                status::BUSY => Err(XError::Remote(format!(
                    "server busy: procedure {command} on {peer} rejected"
                ))),
                code => Err(XError::Remote(format!(
                    "procedure {command} on {peer} failed with status {code}"
                ))),
            }
        })();

        pool.free.lock().push(chan);
        pool.sema.v(ctx);
        result
    }

    /// Runs one request to completion: forwarding policy, procedure table
    /// lookup, handler execution, and the reply push down `lls`. Runs in
    /// the delivering process when dispatch is synchronous, or in a
    /// shepherd process when a pool is configured.
    fn execute_request(
        &self,
        ctx: &Ctx,
        lls: &SessionRef,
        command: u16,
        msg: Message,
    ) -> XResult<()> {
        // Forwarding policy first: redirect the command to another host.
        let fwd = self.forward.lock().get(&command).copied();
        if let Some(backend) = fwd {
            let result = self.call(ctx, backend, command, msg);
            return match result {
                Ok(body) => self.reply_via(ctx, lls, command, status::OK, body),
                Err(_) => {
                    self.reply_via(ctx, lls, command, status::FORWARD_FAILED, ctx.empty_msg())
                }
            };
        }
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup); // Procedure table lookup.
        let handlers = self.handlers.read();
        match handlers.get(&command) {
            None => {
                drop(handlers);
                self.reply_via(ctx, lls, command, status::NO_SUCH_PROC, Message::empty())
            }
            Some(h) => {
                let result = h(ctx, msg);
                drop(handlers);
                match result {
                    Ok(body) => self.reply_via(ctx, lls, command, status::OK, body),
                    Err(e) => {
                        let _ = &e;
                        ctx.trace_note("procedure failed");
                        self.reply_via(ctx, lls, command, status::PROC_ERROR, ctx.empty_msg())
                    }
                }
            }
        }
    }

    fn reply_via(
        &self,
        ctx: &Ctx,
        lls: &SessionRef,
        command: u16,
        status_code: u8,
        body: Message,
    ) -> XResult<()> {
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup); // Reply-path state lookup.
        let hdr = SelectHdr {
            typ: TYP_REPLY,
            command,
            status: status_code,
        };
        let mut wire = body;
        ctx.push_header(&mut wire, &hdr.encode());
        ctx.charge_layer_call();
        lls.push(ctx, wire)?;
        Ok(())
    }
}

/// A client session bound to one (server, procedure).
pub struct SelectSession {
    parent: Arc<Select>,
    peer: IpAddr,
    command: u16,
}

impl Session for SelectSession {
    fn protocol_id(&self) -> ProtoId {
        self.parent.me
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        self.parent
            .call(ctx, self.peer, self.command, msg)
            .map(Some)
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            ControlOp::GetFreeChannels => Ok(ControlRes::Size(
                self.parent.free_channels(self.peer).unwrap_or(0),
            )),
            _ => {
                let _ = ctx;
                Err(XError::Unsupported("select session control"))
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for Select {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::select()
    }

    fn name(&self) -> &'static str {
        "select"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let parts = ParticipantSet::local(Participant::proto(rel_proto_num("channel", "select")?));
        ctx.kernel().open_enable(ctx, self.channel, self.me, &parts)
    }

    fn reboot(&self, _ctx: &Ctx) -> XResult<()> {
        // Channel pools and cached sessions referenced the old CHANNEL
        // incarnation; drop them so fresh ones are opened on demand.
        // Registered procedures and forwarding policy survive.
        self.pools.lock().clear();
        self.sessions.lock().clear();
        Ok(())
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let peer = parts
            .remote_part()
            .and_then(|p| p.host)
            .ok_or_else(|| XError::Config("select open needs a server host".into()))?;
        let command = parts
            .local_part()
            .and_then(|p| p.proto_num)
            .ok_or_else(|| XError::Config("select open needs a command".into()))?
            as u16;
        if let Some(s) = self.sessions.lock().get(&(peer.0, command)) {
            return Ok(Arc::clone(s));
        }
        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        let s: SessionRef = Arc::new(SelectSession {
            parent: self.self_arc(),
            peer,
            command,
        });
        self.sessions
            .lock()
            .insert((peer.0, command), Arc::clone(&s));
        Ok(s)
    }

    fn open_enable(&self, _ctx: &Ctx, _upper: ProtoId, _parts: &ParticipantSet) -> XResult<()> {
        // Server-side dispatch is by registered handlers; nothing to record.
        Ok(())
    }

    /// CHANNEL passively created a server channel for us (the open-done
    /// upcall completing our boot-time open_enable).
    fn open_done(
        &self,
        _ctx: &Ctx,
        _lower: ProtoId,
        _lls: &SessionRef,
        _parts: &ParticipantSet,
    ) -> XResult<()> {
        self.passive_opens.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Server side: a request arrives up from CHANNEL (`lls` is the server
    /// channel session the reply must go down on). With a shepherd pool
    /// configured the request is handed off and this (interrupt-side)
    /// process returns immediately; CHANNEL keeps the request in progress
    /// until the shepherd pushes the reply, so retransmissions arriving in
    /// the meantime are acknowledged rather than re-executed.
    fn demux(&self, ctx: &Ctx, lls: &SessionRef, mut msg: Message) -> XResult<()> {
        let bytes = ctx.pop_header(&mut msg, SELECT_HDR_LEN)?;
        let hdr = SelectHdr::decode(&bytes)?;
        drop(bytes);
        if hdr.typ != TYP_REQUEST {
            ctx.trace_note("unexpected type");
            return Ok(());
        }
        if self.shepherds.config().workers == 0 || ctx.mode() == Mode::Inline {
            // Synchronous dispatch: the historical (and default) path.
            return self.execute_request(ctx, lls, hdr.command, msg);
        }
        let me = self.self_arc();
        let job_lls = Arc::clone(lls);
        let command = hdr.command;
        let submitted = self.shepherds.submit(
            ctx,
            Box::new(move |jctx| {
                if me.execute_request(jctx, &job_lls, command, msg).is_err() {
                    jctx.trace_note("shepherd dispatch failed");
                }
            }),
        );
        match submitted {
            Submitted::Ran | Submitted::Accepted => Ok(()),
            Submitted::Overloaded(Overload::Reject) => {
                // Tell the client explicitly so it can back off.
                self.reply_via(ctx, lls, command, status::BUSY, ctx.empty_msg())
            }
            Submitted::Overloaded(Overload::Drop) => {
                // Clear CHANNEL's in-progress slot so the client's
                // retransmission is redelivered instead of merely ACKed.
                let _ = lls.control(ctx, &ControlOp::Custom("chan_abort", vec![]));
                Ok(())
            }
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            // Asked by VIP when SELECT's stack sits directly over it.
            ControlOp::GetMaxMsgSize => Ok(ControlRes::Size(1500)),
            _ => {
                let _ = ctx;
                Err(XError::Unsupported("select control"))
            }
        }
    }

    // Handlers are registration-time configuration; what must rewind is the
    // channel pools (the free list's LIFO *order* decides which channel the
    // next call uses), the session cache, and the counters.
    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        let pools = self
            .pools
            .lock()
            .iter()
            .map(|(k, p)| {
                let free = p.free.lock().clone();
                debug_assert_eq!(
                    free.len(),
                    self.cfg.channels_per_peer,
                    "select snapshot with channels checked out (not quiescent)"
                );
                (
                    *k,
                    PoolSnap {
                        pool: Arc::clone(p),
                        sema: p.sema.snap_state(),
                        free,
                    },
                )
            })
            .collect();
        Some(Arc::new(SelectSnap {
            forward: self.forward.lock().clone(),
            pools,
            sessions: self.sessions.lock().clone(),
            passive_opens: self.passive_opens.load(Ordering::Relaxed),
            shepherds: self.shepherds.stats(),
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<SelectSnap>(blob, "select")?;
        *self.forward.lock() = s.forward.clone();
        {
            let mut pools = self.pools.lock();
            pools.clear();
            for (k, ps) in &s.pools {
                ps.pool.sema.restore_state(ps.sema);
                *ps.pool.free.lock() = ps.free.clone();
                pools.insert(*k, Arc::clone(&ps.pool));
            }
        }
        *self.sessions.lock() = s.sessions.clone();
        self.passive_opens.store(s.passive_opens, Ordering::Relaxed);
        self.shepherds.restore_stats(s.shepherds);
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct PoolSnap {
    pool: Arc<ChanPool>,
    sema: (i64, u64),
    free: Vec<SessionRef>,
}

struct SelectSnap {
    forward: HashMap<u16, IpAddr>,
    pools: HashMap<u32, PoolSnap>,
    sessions: HashMap<(u32, u16), SessionRef>,
    passive_opens: u64,
    shepherds: ShepherdStats,
}

// ---------------------------------------------------------------------------
// RDGRAM — the paper's "trivial" reliable datagram protocol over CHANNEL.
// ---------------------------------------------------------------------------

/// Reliable datagrams on top of CHANNEL: each datagram is a request whose
/// empty reply confirms delivery. At-most-once comes for free from CHANNEL.
pub struct Rdgram {
    weak_self: Weak<Rdgram>,
    me: ProtoId,
    channel: ProtoId,
    upper: Mutex<Option<ProtoId>>,
    sessions: Mutex<HashMap<u32, SessionRef>>,
}

impl Rdgram {
    /// Creates RDGRAM above the CHANNEL protocol `channel`.
    pub fn new(me: ProtoId, channel: ProtoId) -> Arc<Rdgram> {
        Arc::new_cyclic(|weak_self| Rdgram {
            weak_self: weak_self.clone(),
            me,
            channel,
            upper: Mutex::new(None),
            sessions: Mutex::new(HashMap::new()),
        })
    }

    fn self_arc(&self) -> Arc<Rdgram> {
        self.weak_self.upgrade().expect("rdgram alive")
    }
}

/// Client session: push = reliably deliver one datagram.
pub struct RdgramSession {
    parent: Arc<Rdgram>,
    peer: IpAddr,
    chan: SessionRef,
}

impl Session for RdgramSession {
    fn protocol_id(&self) -> ProtoId {
        self.parent.me
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        ctx.charge_layer_call();
        let reply = self.chan.push(ctx, msg)?;
        debug_assert!(reply.is_some(), "channel always returns a reply");
        Ok(None) // Datagram semantics: nothing comes back to the caller.
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            other => self.chan.control(ctx, other),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for Rdgram {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::rdgram()
    }

    fn name(&self) -> &'static str {
        "rdgram"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let parts = ParticipantSet::local(Participant::proto(rel_proto_num("channel", "rdgram")?));
        ctx.kernel().open_enable(ctx, self.channel, self.me, &parts)
    }

    fn reboot(&self, _ctx: &Ctx) -> XResult<()> {
        self.sessions.lock().clear();
        Ok(())
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let peer = parts
            .remote_part()
            .and_then(|p| p.host)
            .ok_or_else(|| XError::Config("rdgram open needs a peer host".into()))?;
        if let Some(s) = self.sessions.lock().get(&peer.0) {
            return Ok(Arc::clone(s));
        }
        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        let cparts = ParticipantSet::pair(
            Participant::proto(rel_proto_num("channel", "rdgram")?),
            Participant::host(peer),
        );
        let chan = ctx.kernel().open(ctx, self.channel, self.me, &cparts)?;
        let s: SessionRef = Arc::new(RdgramSession {
            parent: self.self_arc(),
            peer,
            chan,
        });
        self.sessions.lock().insert(peer.0, Arc::clone(&s));
        Ok(s)
    }

    fn open_enable(&self, _ctx: &Ctx, upper: ProtoId, _parts: &ParticipantSet) -> XResult<()> {
        *self.upper.lock() = Some(upper);
        Ok(())
    }

    /// Server side: deliver the datagram up, then confirm with an empty
    /// reply so the sender's CHANNEL push completes.
    fn demux(&self, ctx: &Ctx, lls: &SessionRef, msg: Message) -> XResult<()> {
        let upper =
            (*self.upper.lock()).ok_or_else(|| XError::NoEnable("rdgram has no upper".into()))?;
        ctx.kernel().demux_to(ctx, upper, lls, msg)?;
        ctx.charge_layer_call();
        lls.push(ctx, ctx.empty_msg())?;
        Ok(())
    }

    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        Some(Arc::new(RdgramSnap {
            upper: *self.upper.lock(),
            sessions: self.sessions.lock().clone(),
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<RdgramSnap>(blob, "rdgram")?;
        *self.upper.lock() = s.upper;
        *self.sessions.lock() = s.sessions.clone();
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct RdgramSnap {
    upper: Option<ProtoId>,
    sessions: HashMap<u32, SessionRef>,
}
