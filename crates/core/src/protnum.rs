//! The protocol-number table ("prottbl").
//!
//! In the x-kernel, protocol numbers are *relative to the protocol below*:
//! Sprite RPC is Ethernet type `0x3e00` when configured directly over ETH
//! but IP protocol 101 when configured over IP or VIP. This table is what
//! lets the same protocol implementation be composed over either — and its
//! absence for UDP (two 16-bit ports cannot be mapped into one 8-bit IP
//! protocol number) is the paper's Section 5 example of why virtual
//! protocols are hard to design for conventional stacks. The suite-wide
//! standardization embodied here is the paper's proposed *meta-protocol*
//! rule: "the meta-protocol defines a standard protocol type field".
//!
//! Also home to [`peer_key`]: the peer-identity token protocols use when a
//! lower session may be Ethernet (48-bit address) or IP (32-bit address) —
//! headerless virtual protocols deliver messages up through either.

use xkernel::prelude::*;

use inet::eth::eth_type;
use inet::ip::ip_proto;

/// Relative protocol number of `me` when configured directly above `lower`.
///
/// `lower` is the *name* of the protocol below (from [`Protocol::name`]).
/// Virtual protocols (vip/vipaddr/vipsize) present IP's protocol-number
/// space, mapping into Ethernet's type space internally.
pub fn rel_proto_num(lower: &str, me: &str) -> XResult<u32> {
    let n = match (lower, me) {
        ("eth", "ip") => u32::from(eth_type::IP),
        ("eth", "arp") => u32::from(eth_type::ARP),
        ("eth", "sprite") => u32::from(eth_type::SPRITE_RPC),
        ("eth", "fragment") => 0x3e01,
        ("eth", "channel") => 0x3e02,
        ("eth", "psync") => 0x3e03,
        ("eth", "request_reply") => 0x3e04,
        ("eth", "pinger") => 0x3e05,
        // IP-addressed delivery protocols all present IP's number space.
        ("ip" | "vip" | "vipaddr" | "vipsize" | "fragment", proto) => match proto {
            "icmp" => u32::from(ip_proto::ICMP),
            "udp" => u32::from(ip_proto::UDP),
            "tcp" => u32::from(ip_proto::TCP),
            "sprite" => u32::from(ip_proto::SPRITE_RPC),
            "fragment" => u32::from(ip_proto::FRAGMENT),
            "channel" => u32::from(ip_proto::CHANNEL),
            "psync" => u32::from(ip_proto::PSYNC),
            "request_reply" => u32::from(ip_proto::REQUEST_REPLY),
            "pinger" => 106,
            _ => {
                return Err(XError::Config(format!(
                    "prottbl: no number for '{proto}' over '{lower}'"
                )))
            }
        },
        // CHANNEL's and REQUEST_REPLY's users get transaction-layer numbers
        // (the two layers are substitutable, so they share a number space).
        ("channel" | "request_reply", "select") => 1,
        ("channel" | "request_reply", "fselect") => 1, // Wire-compatible with select.
        ("channel" | "request_reply", "rdgram") => 2,
        ("channel" | "request_reply", "sunselect") => 3,
        ("channel" | "request_reply", "auth_none") => 4,
        ("channel" | "request_reply", "auth_unix") => 5,
        ("channel" | "request_reply", "pinger") => 9,
        // Auth layers are transparent pass-throughs for their single upper.
        ("auth_none" | "auth_unix", "sunselect") => 3,
        _ => {
            return Err(XError::Config(format!(
                "prottbl: no number for '{me}' over '{lower}'"
            )))
        }
    };
    Ok(n)
}

/// A peer-identity token usable whatever the lower session's address family
/// is. Headerless virtual protocols hand messages up with the raw ETH or IP
/// session as `lls`, so upper protocols key their session tables on this.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PeerKey {
    /// Peer known by internet address.
    Ip(u32),
    /// Peer known only by hardware address (hashed to 64 bits).
    Eth(u64),
}

/// Extracts the best available peer identity from a lower session.
pub fn peer_key(ctx: &Ctx, lls: &SessionRef) -> XResult<PeerKey> {
    if let Ok(r) = lls.control(ctx, &ControlOp::GetPeerHost) {
        return Ok(PeerKey::Ip(r.ip()?.0));
    }
    // Ethernet sessions know the peer's hardware address via their own
    // source/destination; expose it through GetMyEth's counterpart if
    // available, else fall back to the session object identity.
    if let Ok(ControlRes::Eth(e)) = lls.control(ctx, &ControlOp::Custom("peer-eth", Vec::new())) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in e.0 {
            h = (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
        }
        return Ok(PeerKey::Eth(h));
    }
    Err(XError::Config(
        "lower session provides no peer identity".into(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_numbers_differ_by_lower() {
        let over_eth = rel_proto_num("eth", "sprite").unwrap();
        let over_ip = rel_proto_num("ip", "sprite").unwrap();
        let over_vip = rel_proto_num("vip", "sprite").unwrap();
        assert_eq!(over_eth, u32::from(eth_type::SPRITE_RPC));
        assert_eq!(over_ip, u32::from(ip_proto::SPRITE_RPC));
        assert_eq!(over_ip, over_vip, "vip presents IP's number space");
    }

    #[test]
    fn unknown_pairs_are_config_errors() {
        assert!(rel_proto_num("eth", "nosuch").is_err());
        assert!(rel_proto_num("udp", "sprite").is_err());
    }

    #[test]
    fn channel_users_have_numbers() {
        assert_eq!(rel_proto_num("channel", "select").unwrap(), 1);
        assert_eq!(
            rel_proto_num("channel", "select").unwrap(),
            rel_proto_num("channel", "fselect").unwrap(),
            "forwarding select is wire-compatible"
        );
        assert_ne!(
            rel_proto_num("channel", "select").unwrap(),
            rel_proto_num("channel", "rdgram").unwrap()
        );
    }
}
