//! The virtual protocols: VIP, VIPADDR, and VIPSIZE.
//!
//! A *virtual protocol* is a header-less protocol that accepts messages from
//! high-level protocols and dynamically multiplexes them onto lower
//! protocols providing approximately the same semantics. It adds no
//! functionality and no header bytes — which is why it can be inserted or
//! deleted freely, and why receives bypass it entirely: `open_enable`
//! propagates the upper protocol *directly* to the lower layers, so the only
//! per-message overhead a virtual protocol ever adds is its send-side test
//! (VIP: "the cost of the single test in VIP push"; VIPADDR: nothing at
//! all).
//!
//! * [`Vip`] presents IP semantics and multiplexes onto ETH and IP. At open
//!   time it asks the invoking protocol for its maximum message size
//!   (`GetMaxMsgSize`) and asks ARP whether the destination answers on the
//!   local wire; it then opens an ETH session, an IP session, or both. Its
//!   push is one length test.
//! * [`VipAddr`] (§4.3) chooses ETH vs IP *at open time only* and returns
//!   the lower session itself rather than one of its own — zero per-message
//!   overhead.
//! * [`VipSize`] (§4.3) chooses between FRAGMENT and the direct path by
//!   message size on every push — this is what lets a layered RPC stack
//!   dynamically delete its own bulk-transfer layer for small messages.
//!
//! IP protocol numbers are mapped into an unused range of Ethernet's 16-bit
//! type space (the paper's observation that the mapping is possible because
//! 256 ≪ 65,536): `eth_type::VIP_BASE + p`.

use std::any::Any;
use std::sync::Arc;

use xkernel::prelude::*;

use inet::eth::{eth_type, ETH_MTU};
use inet::ip::IP_HDR_LEN;

/// Maps an IP protocol number into VIP's reserved Ethernet type range.
pub fn eth_type_for(ip_proto: u32) -> XResult<u32> {
    if ip_proto > 0xff {
        return Err(XError::Config(format!(
            "cannot map protocol number {ip_proto} (> 8 bits) onto an \
             ethernet type — the paper's UDP-under-VIP problem"
        )));
    }
    Ok(u32::from(eth_type::VIP_BASE) + ip_proto)
}

fn proto_of(parts: &ParticipantSet, who: &str) -> XResult<u32> {
    parts
        .local_part()
        .and_then(|p| p.proto_num)
        .ok_or_else(|| XError::Config(format!("{who} needs a protocol number")))
}

fn peer_of(parts: &ParticipantSet, who: &str) -> XResult<IpAddr> {
    parts
        .remote_part()
        .and_then(|p| p.host)
        .ok_or_else(|| XError::Config(format!("{who} needs a peer host")))
}

/// Asks ARP whether `dst` answers on the local wire and returns its
/// hardware address if so.
fn resolve_local(ctx: &Ctx, arp: ProtoId, dst: IpAddr) -> XResult<Option<EthAddr>> {
    match ctx.kernel().control(ctx, arp, &ControlOp::Resolve(dst)) {
        Ok(r) => Ok(Some(r.eth()?)),
        Err(XError::Unreachable(_)) => Ok(None),
        Err(e) => Err(e),
    }
}

/// Opens an ETH session for (mapped) protocol `p` towards `hw`.
fn open_eth(ctx: &Ctx, eth: ProtoId, me: ProtoId, p: u32, hw: EthAddr) -> XResult<SessionRef> {
    let parts = ParticipantSet::pair(
        Participant::proto(eth_type_for(p)?),
        Participant::default().with_eth(hw),
    );
    ctx.kernel().open(ctx, eth, me, &parts)
}

/// Opens an IP session for protocol `p` towards `dst`.
fn open_ip(ctx: &Ctx, ip: ProtoId, me: ProtoId, p: u32, dst: IpAddr) -> XResult<SessionRef> {
    let parts = ParticipantSet::pair(Participant::proto(p), Participant::host(dst));
    ctx.kernel().open(ctx, ip, me, &parts)
}

// ---------------------------------------------------------------------------
// VIP
// ---------------------------------------------------------------------------

/// The VIP protocol object (Virtual IP).
pub struct Vip {
    me: ProtoId,
    ip: ProtoId,
    eth: ProtoId,
    arp: ProtoId,
}

impl Vip {
    /// Creates VIP over `ip` and `eth`, using `arp` as the locality oracle.
    pub fn new(me: ProtoId, ip: ProtoId, eth: ProtoId, arp: ProtoId) -> Arc<Vip> {
        Arc::new(Vip { me, ip, eth, arp })
    }
}

/// A VIP session: at most one ETH and one IP session under it; push is a
/// single length test.
pub struct VipSession {
    proto: ProtoId,
    peer: IpAddr,
    my_ip: IpAddr,
    eth_sess: Option<SessionRef>,
    ip_sess: Option<SessionRef>,
    eth_mtu: usize,
}

impl Session for VipSession {
    fn protocol_id(&self) -> ProtoId {
        self.proto
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        // The whole per-message cost of VIP: one call, one length test with
        // its session dispatch.
        ctx.charge_class(OpClass::LayerCall, ctx.cost().layer_call);
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup / 2);
        match (&self.eth_sess, &self.ip_sess) {
            (Some(eth), _) if msg.len() <= self.eth_mtu => eth.push(ctx, msg),
            (_, Some(ip)) => ip.push(ctx, msg),
            (Some(eth), None) => eth.push(ctx, msg),
            (None, None) => Err(XError::Config("vip session with no lower".into())),
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            ControlOp::GetMyHost => Ok(ControlRes::Ip(self.my_ip)),
            ControlOp::GetOptPacket => match (&self.eth_sess, &self.ip_sess) {
                // Local-only: full Ethernet MTU is fragmentation-free.
                (Some(_), None) => Ok(ControlRes::Size(self.eth_mtu)),
                // IP may be used: stay under its fragmentation threshold.
                _ => Ok(ControlRes::Size((self.eth_mtu - IP_HDR_LEN) & !7)),
            },
            ControlOp::GetMaxPacket => match &self.ip_sess {
                Some(ip) => ip.control(ctx, op),
                None => Ok(ControlRes::Size(self.eth_mtu)),
            },
            ControlOp::GetFragCount(n) => {
                let opt = self.control(ctx, &ControlOp::GetOptPacket)?.size()?;
                Ok(ControlRes::Size(n.max(&1).div_ceil(opt)))
            }
            _ => Err(XError::Unsupported("vip session control")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for Vip {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::vip()
    }

    fn name(&self) -> &'static str {
        "vip"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn open(&self, ctx: &Ctx, upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let p = proto_of(parts, "vip open")?;
        let dst = peer_of(parts, "vip open")?;
        // Ask the invoking protocol how big its messages can get.
        let max_msg = ctx
            .kernel()
            .control(ctx, upper, &ControlOp::GetMaxMsgSize)
            .and_then(|r| r.size())
            .unwrap_or(usize::MAX);
        // Ask ARP whether the destination is on our Ethernet.
        let local = resolve_local(ctx, self.arp, dst)?;
        let my_ip = ctx
            .kernel()
            .control(ctx, self.ip, &ControlOp::GetMyHost)?
            .ip()?;

        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        let (eth_sess, ip_sess) = match local {
            Some(hw) if max_msg <= ETH_MTU => {
                (Some(open_eth(ctx, self.eth, self.me, p, hw)?), None)
            }
            Some(hw) => (
                // Local but possibly-large messages: open both; push picks.
                Some(open_eth(ctx, self.eth, self.me, p, hw)?),
                Some(open_ip(ctx, self.ip, self.me, p, dst)?),
            ),
            None => (None, Some(open_ip(ctx, self.ip, self.me, p, dst)?)),
        };
        ctx.trace_note(match (eth_sess.is_some(), ip_sess.is_some()) {
            (true, true) => "open: eth=true ip=true",
            (true, false) => "open: eth=true ip=false",
            (false, true) => "open: eth=false ip=true",
            (false, false) => "open: eth=false ip=false",
        });
        Ok(Arc::new(VipSession {
            proto: self.me,
            peer: dst,
            my_ip,
            eth_sess,
            ip_sess,
            eth_mtu: ETH_MTU,
        }))
    }

    /// Header-less: the enable propagates the *upper* protocol directly to
    /// both lower layers, so received messages never touch VIP at all.
    fn open_enable(&self, ctx: &Ctx, upper: ProtoId, parts: &ParticipantSet) -> XResult<()> {
        let p = proto_of(parts, "vip enable")?;
        let kernel = ctx.kernel();
        kernel.open_enable(
            ctx,
            self.eth,
            upper,
            &ParticipantSet::local(Participant::proto(eth_type_for(p)?)),
        )?;
        kernel.open_enable(
            ctx,
            self.ip,
            upper,
            &ParticipantSet::local(Participant::proto(p)),
        )
    }

    fn demux(&self, _ctx: &Ctx, _lls: &SessionRef, _msg: Message) -> XResult<()> {
        Err(XError::Unsupported(
            "vip is header-less: receives bypass it by construction",
        ))
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetMyHost => ctx.kernel().control(ctx, self.ip, op),
            // Conservative: a session might use the IP path.
            ControlOp::GetOptPacket => Ok(ControlRes::Size((ETH_MTU - IP_HDR_LEN) & !7)),
            ControlOp::GetMaxPacket => ctx.kernel().control(ctx, self.ip, op),
            _ => Err(XError::Unsupported("vip control")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// VIPADDR
// ---------------------------------------------------------------------------

/// VIPADDR: open-time-only selection between ETH and IP. Returns the lower
/// session itself, so it adds zero per-message overhead.
pub struct VipAddr {
    me: ProtoId,
    ip: ProtoId,
    eth: ProtoId,
    arp: ProtoId,
}

impl VipAddr {
    /// Creates VIPADDR over `ip` and `eth`, with `arp` as locality oracle.
    pub fn new(me: ProtoId, ip: ProtoId, eth: ProtoId, arp: ProtoId) -> Arc<VipAddr> {
        Arc::new(VipAddr { me, ip, eth, arp })
    }
}

impl Protocol for VipAddr {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::vipaddr()
    }

    fn name(&self) -> &'static str {
        "vipaddr"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let p = proto_of(parts, "vipaddr open")?;
        let dst = peer_of(parts, "vipaddr open")?;
        match resolve_local(ctx, self.arp, dst)? {
            Some(hw) => {
                ctx.trace_note("open: local raw ethernet");
                open_eth(ctx, self.eth, self.me, p, hw)
            }
            None => {
                ctx.trace_note("open: remote ip");
                open_ip(ctx, self.ip, self.me, p, dst)
            }
        }
    }

    fn open_enable(&self, ctx: &Ctx, upper: ProtoId, parts: &ParticipantSet) -> XResult<()> {
        let p = proto_of(parts, "vipaddr enable")?;
        let kernel = ctx.kernel();
        kernel.open_enable(
            ctx,
            self.eth,
            upper,
            &ParticipantSet::local(Participant::proto(eth_type_for(p)?)),
        )?;
        kernel.open_enable(
            ctx,
            self.ip,
            upper,
            &ParticipantSet::local(Participant::proto(p)),
        )
    }

    fn demux(&self, _ctx: &Ctx, _lls: &SessionRef, _msg: Message) -> XResult<()> {
        Err(XError::Unsupported("vipaddr never sees messages"))
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetMyHost => ctx.kernel().control(ctx, self.ip, op),
            ControlOp::GetOptPacket => Ok(ControlRes::Size((ETH_MTU - IP_HDR_LEN) & !7)),
            ControlOp::GetMaxPacket => ctx.kernel().control(ctx, self.ip, op),
            _ => Err(XError::Unsupported("vipaddr control")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

// ---------------------------------------------------------------------------
// VIPSIZE
// ---------------------------------------------------------------------------

/// VIPSIZE: per-push selection between FRAGMENT (large messages) and the
/// direct path (small messages) — §4.3's "dynamically removing layers".
pub struct VipSize {
    me: ProtoId,
    fragment: ProtoId,
    direct: ProtoId,
}

impl VipSize {
    /// Creates VIPSIZE selecting between `fragment` and `direct` (usually
    /// VIPADDR).
    pub fn new(me: ProtoId, fragment: ProtoId, direct: ProtoId) -> Arc<VipSize> {
        Arc::new(VipSize {
            me,
            fragment,
            direct,
        })
    }
}

/// A VIPSIZE session: one FRAGMENT session, one direct session, and a
/// threshold; push is a single length test.
pub struct VipSizeSession {
    proto: ProtoId,
    peer: IpAddr,
    frag: SessionRef,
    direct: SessionRef,
    threshold: usize,
}

impl Session for VipSizeSession {
    fn protocol_id(&self) -> ProtoId {
        self.proto
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        ctx.charge_layer_call(); // The single size test.
        if msg.len() <= self.threshold {
            self.direct.push(ctx, msg)
        } else {
            self.frag.push(ctx, msg)
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            ControlOp::GetOptPacket => Ok(ControlRes::Size(self.threshold)),
            ControlOp::GetMaxPacket => self.frag.control(ctx, op),
            ControlOp::GetFragCount(n) => {
                if *n <= self.threshold {
                    Ok(ControlRes::Size(1))
                } else {
                    self.frag.control(ctx, op)
                }
            }
            other => self.direct.control(ctx, other),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for VipSize {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::vipsize()
    }

    fn name(&self) -> &'static str {
        "vipsize"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let p = proto_of(parts, "vipsize open")?;
        let dst = peer_of(parts, "vipsize open")?;
        let fparts = ParticipantSet::pair(Participant::proto(p), Participant::host(dst));
        let frag = ctx.kernel().open(ctx, self.fragment, self.me, &fparts)?;
        let direct = ctx.kernel().open(ctx, self.direct, self.me, &fparts)?;
        let threshold = direct
            .control(ctx, &ControlOp::GetOptPacket)
            .and_then(|r| r.size())
            .unwrap_or(ETH_MTU);
        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        ctx.trace_note("open: size-selected");
        Ok(Arc::new(VipSizeSession {
            proto: self.me,
            peer: dst,
            frag,
            direct,
            threshold,
        }))
    }

    fn open_enable(&self, ctx: &Ctx, upper: ProtoId, parts: &ParticipantSet) -> XResult<()> {
        let p = proto_of(parts, "vipsize enable")?;
        let kernel = ctx.kernel();
        // Large messages arrive assembled from FRAGMENT; small ones arrive
        // straight off the direct path. Both bypass VIPSIZE.
        kernel.open_enable(
            ctx,
            self.fragment,
            upper,
            &ParticipantSet::local(Participant::proto(p)),
        )?;
        kernel.open_enable(
            ctx,
            self.direct,
            upper,
            &ParticipantSet::local(Participant::proto(p)),
        )
    }

    fn demux(&self, _ctx: &Ctx, _lls: &SessionRef, _msg: Message) -> XResult<()> {
        Err(XError::Unsupported("vipsize never sees received messages"))
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetMyHost => ctx.kernel().control(ctx, self.direct, op),
            ControlOp::GetOptPacket => ctx.kernel().control(ctx, self.direct, op),
            ControlOp::GetMaxPacket => ctx.kernel().control(ctx, self.fragment, op),
            _ => Err(XError::Unsupported("vipsize control")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eth_type_mapping_bounds() {
        assert_eq!(eth_type_for(0).unwrap(), u32::from(eth_type::VIP_BASE));
        assert_eq!(
            eth_type_for(255).unwrap(),
            u32::from(eth_type::VIP_BASE) + 255
        );
        // The paper's UDP problem: port pairs don't fit in 8 bits.
        assert!(eth_type_for(0x1_0000).is_err());
        assert!(eth_type_for(256).is_err());
    }
}
