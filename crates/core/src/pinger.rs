//! PINGER — the measurement protocol for Table III's partial stacks.
//!
//! Table III reports the round-trip latency of VIP alone, FRAGMENT-VIP, and
//! CHANNEL-FRAGMENT-VIP — stacks that are not complete RPC protocols. The
//! paper measures them with a test harness that bounces a null message off
//! the peer; PINGER is that harness, expressed as just another protocol in
//! the uniform interface (which is itself a small demonstration of the
//! interface's point).
//!
//! On the echo side, PINGER pushes every received message straight back
//! down the session it arrived on — which is a datagram session for
//! VIP/FRAGMENT lowers and a reply for a CHANNEL lower. On the client side,
//! [`Pinger::rtt`] completes either synchronously (CHANNEL returns the
//! reply from `push`) or when the echo is demultiplexed back up.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use xkernel::prelude::*;

use crate::protnum::rel_proto_num;

/// How long to wait for an echo before failing.
pub const PING_TIMEOUT_NS: u64 = 5_000_000_000;

/// The PINGER protocol object.
pub struct Pinger {
    me: ProtoId,
    lower: ProtoId,
    echo: bool,
    lower_name: OnceLock<&'static str>,
    sessions: Mutex<HashMap<u32, SessionRef>>,
    waiting: Mutex<Option<EchoWaiter>>,
    series: Mutex<Option<Series>>,
}

/// A parked single round trip: wake signal plus the echoed-bytes slot.
type EchoWaiter = (SharedSema, Arc<Mutex<Option<Vec<u8>>>>);

/// In-flight callback-driven ping-pong series (see [`Pinger::run_series`]).
struct Series {
    remaining: usize,
    payload: Vec<u8>,
    sess: SessionRef,
    done: SharedSema,
}

impl Pinger {
    /// Creates a PINGER above `lower`; `echo` marks the responder side.
    pub fn new(me: ProtoId, lower: ProtoId, echo: bool) -> Arc<Pinger> {
        Arc::new(Pinger {
            me,
            lower,
            echo,
            lower_name: OnceLock::new(),
            sessions: Mutex::new(HashMap::new()),
            waiting: Mutex::new(None),
            series: Mutex::new(None),
        })
    }

    fn session_for(&self, ctx: &Ctx, peer: IpAddr) -> XResult<SessionRef> {
        if let Some(s) = self.sessions.lock().get(&peer.0) {
            return Ok(Arc::clone(s));
        }
        let lname = self.lower_name.get().expect("pinger booted");
        let parts = ParticipantSet::pair(
            Participant::proto(rel_proto_num(lname, "pinger")?),
            Participant::host(peer),
        );
        let s = ctx.kernel().open(ctx, self.lower, self.me, &parts)?;
        self.sessions.lock().insert(peer.0, Arc::clone(&s));
        Ok(s)
    }

    /// Runs `n` back-to-back round trips of a `payload_len`-byte message and
    /// returns the total virtual time.
    ///
    /// Unlike [`Pinger::rtt`], the next send is issued directly from the
    /// demux of the previous echo — callback style, with no semaphore block
    /// per round trip. This mirrors the paper's measurement of the layers
    /// *below* CHANNEL: the "synchronization and process switching that is
    /// intrinsic to the request/reply paradigm" is a cost CHANNEL adds, so
    /// the harness must not impose it on the lower layers itself. (Over a
    /// CHANNEL lower, `push` blocks and returns the reply, so the intrinsic
    /// cost is naturally included there.)
    pub fn run_series(
        &self,
        ctx: &Ctx,
        peer: IpAddr,
        n: usize,
        payload_len: usize,
    ) -> XResult<u64> {
        assert!(n >= 1, "series needs at least one round trip");
        let sess = self.session_for(ctx, peer)?;
        let payload = vec![0x5Au8; payload_len];
        let t0 = ctx.now();
        let done = SharedSema::new(0);
        {
            let mut series = self.series.lock();
            *series = Some(Series {
                remaining: n,
                payload: payload.clone(),
                sess: Arc::clone(&sess),
                done: done.clone(),
            });
        }
        if let Some(_reply) = sess.push(ctx, ctx.msg(payload.clone()))? {
            // Synchronous-reply lower (CHANNEL): a plain loop, blocking per
            // call exactly as a real RPC client would.
            *self.series.lock() = None;
            for _ in 1..n {
                sess.push(ctx, ctx.msg(payload.clone()))?;
            }
            return Ok(ctx.now() - t0);
        }
        // Datagram lower: the demux of each echo launches the next send;
        // block only once, at the end of the whole series.
        if !done.p_timeout(ctx, PING_TIMEOUT_NS.saturating_mul(n as u64)) {
            *self.series.lock() = None;
            return Err(XError::Timeout(format!("pinger series to {peer}")));
        }
        Ok(ctx.now() - t0)
    }

    /// One round trip of `payload` to the echo host at `peer`; returns the
    /// echoed bytes.
    pub fn rtt(&self, ctx: &Ctx, peer: IpAddr, payload: Vec<u8>) -> XResult<Vec<u8>> {
        let sess = self.session_for(ctx, peer)?;
        let sema = SharedSema::new(0);
        let slot: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
        *self.waiting.lock() = Some((sema.clone(), Arc::clone(&slot)));
        let pushed = sess.push(ctx, ctx.msg(payload))?;
        if let Some(reply) = pushed {
            // Request/reply lower (CHANNEL): the echo came back in-band.
            *self.waiting.lock() = None;
            return Ok(reply.to_vec());
        }
        let ok = sema.p_timeout(ctx, PING_TIMEOUT_NS) || slot.lock().is_some();
        *self.waiting.lock() = None;
        if !ok {
            return Err(XError::Timeout(format!("pinger echo from {peer}")));
        }
        let data = slot.lock().take();
        data.ok_or_else(|| XError::Timeout(format!("pinger woke without echo from {peer}")))
    }
}

impl Protocol for Pinger {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::pinger()
    }

    fn name(&self) -> &'static str {
        "pinger"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let kernel = ctx.kernel();
        let lower = kernel.proto(self.lower)?;
        self.lower_name
            .set(lower.name())
            .map_err(|_| XError::Config("pinger double boot".into()))?;
        let parts =
            ParticipantSet::local(Participant::proto(rel_proto_num(lower.name(), "pinger")?));
        kernel.open_enable(ctx, self.lower, self.me, &parts)
    }

    fn open(&self, _ctx: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<SessionRef> {
        Err(XError::Unsupported("pinger: use rtt()"))
    }

    fn open_enable(&self, _ctx: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<()> {
        Err(XError::Unsupported("pinger has no upper protocols"))
    }

    fn demux(&self, ctx: &Ctx, lls: &SessionRef, msg: Message) -> XResult<()> {
        if self.echo {
            ctx.charge_layer_call();
            lls.push(ctx, msg)?;
            return Ok(());
        }
        // Callback-driven series: fire the next send from this shepherd.
        let next = {
            let mut series = self.series.lock();
            match series.as_mut() {
                Some(st) => {
                    st.remaining -= 1;
                    if st.remaining == 0 {
                        let st = series.take().expect("present");
                        Some((None, st.done))
                    } else {
                        Some((
                            Some((Arc::clone(&st.sess), st.payload.clone())),
                            st.done.clone(),
                        ))
                    }
                }
                None => None,
            }
        };
        match next {
            Some((Some((sess, payload)), _done)) => {
                ctx.charge_layer_call();
                sess.push(ctx, ctx.msg(payload))?;
                return Ok(());
            }
            Some((None, done)) => {
                done.v(ctx);
                return Ok(());
            }
            None => {}
        }
        if let Some((sema, slot)) = self.waiting.lock().as_ref() {
            *slot.lock() = Some(msg.to_vec());
            sema.v(ctx);
        }
        Ok(())
    }

    fn control(&self, _ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            // Asked by VIP: PINGER bounces whatever it is given; tests keep
            // payloads within one Ethernet frame.
            ControlOp::GetMaxMsgSize => Ok(ControlRes::Size(1500)),
            _ => Err(XError::Unsupported("pinger control")),
        }
    }

    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        debug_assert!(
            self.waiting.lock().is_none() && self.series.lock().is_none(),
            "pinger snapshot with a round trip in flight (not quiescent)"
        );
        Some(Arc::new(PingerSnap {
            sessions: self.sessions.lock().clone(),
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<PingerSnap>(blob, "pinger")?;
        *self.waiting.lock() = None;
        *self.series.lock() = None;
        *self.sessions.lock() = s.sessions.clone();
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct PingerSnap {
    sessions: HashMap<u32, SessionRef>,
}
