//! M_RPC — monolithic Sprite RPC.
//!
//! One protocol doing everything the SELECT/CHANNEL/FRAGMENT stack does —
//! procedure dispatch, fixed channels with at-most-once semantics and
//! implicit acknowledgement, and built-in fragmentation with partial
//! retransmission — behind the single 36-byte header from the paper's
//! appendix. Semantically equivalent to the layered version (L_RPC) but a
//! different wire protocol; the two cannot interoperate, exactly as the
//! paper notes.
//!
//! The implicit-acknowledgement scheme is Sprite's: a reply acknowledges
//! the request it answers, a new request on a channel acknowledges the
//! previous reply, explicit ACKs (carrying the received-fragment mask) are
//! only elicited by retransmissions, and boot ids guard at-most-once across
//! reincarnations. Requests and replies up to 16 fragments are fragmented
//! and re-assembled inside this one protocol; an ACK's `frag_mask` lets the
//! client retransmit only the fragments the server is missing.

use std::any::Any;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::{Mutex, RwLock};

use xkernel::prelude::*;
use xkernel::shepherd::{Overload, ShepherdConfig, ShepherdStats, Shepherds, Submitted};
use xkernel::sim::Nanos;

use crate::hdr::{flags, SpriteHdr, SPRITE_HDR_LEN};
use crate::protnum::rel_proto_num;
use crate::select::Handler;

/// Maximum fragments per message (16-bit mask).
pub const MAX_FRAGS: usize = 16;

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct MrpcConfig {
    /// Fixed client channel set per server host.
    pub channels_per_peer: usize,
    /// Timeout for single-fragment requests.
    pub base_timeout_ns: Nanos,
    /// Extra wait per additional fragment in flight.
    pub per_frag_ns: Nanos,
    /// Retransmission rounds before giving up.
    pub max_retries: u32,
    /// Server-side shepherd pool (workers == 0 keeps dispatch synchronous).
    pub shepherds: ShepherdConfig,
}

impl Default for MrpcConfig {
    fn default() -> MrpcConfig {
        MrpcConfig {
            channels_per_peer: 8,
            base_timeout_ns: 100_000_000,
            per_frag_ns: 25_000_000,
            max_retries: 8,
            shepherds: ShepherdConfig::default(),
        }
    }
}

fn full_mask(n: u16) -> u16 {
    if n as usize >= 16 {
        u16::MAX
    } else {
        (1u16 << n) - 1
    }
}

/// Splits a message into `frag_size` pieces (zero-copy).
fn split(msg: &Message, frag_size: usize) -> Vec<Message> {
    let mut rest = msg.clone();
    let mut out = Vec::new();
    while rest.len() > frag_size {
        let tail = rest.split_off(frag_size).expect("in-range split");
        out.push(std::mem::replace(&mut rest, tail));
    }
    out.push(rest);
    out
}

struct Outstanding {
    seq: u32,
    sema: SharedSema,
    reply_frags: Vec<Option<Message>>,
    reply_mask: u16,
    reply_num: u16,
    done: Option<Message>,
    // Server-acknowledged request fragments (from an explicit ACK).
    server_has: u16,
    acked: bool,
}

struct MChanState {
    seq: u32,
    out: Option<Outstanding>,
}

/// One client channel.
struct MChan {
    chan: u16,
    st: Mutex<MChanState>,
}

struct Pool {
    sema: SharedSema,
    free: Mutex<Vec<Arc<MChan>>>,
}

#[derive(Clone)]
struct ServerState {
    last_boot: u32,
    last_seq: u32,
    in_progress: Option<u32>,
    // The in-progress request was handed to a shepherd (its fragments have
    // been consumed); retransmissions must be ACKed, not re-assembled.
    dispatched: bool,
    req_num: u16,
    req_mask: u16,
    req_parts: Vec<Option<Message>>,
    saved_reply_seq: u32,
    saved_reply: Vec<Message>,
}

struct MServer {
    clnt: IpAddr,
    chan: u16,
    st: Mutex<ServerState>,
}

/// The monolithic Sprite RPC protocol object.
pub struct Mrpc {
    weak_self: Weak<Mrpc>,
    me: ProtoId,
    lower: ProtoId,
    /// ARP capability, required when `lower` is raw ETH: monolithic Sprite
    /// RPC identifies hosts by internet address even on the bare wire, so it
    /// performs the same IP→hardware mapping VIP does.
    arp: Option<ProtoId>,
    cfg: MrpcConfig,
    lower_name: OnceLock<&'static str>,
    my_ip: OnceLock<IpAddr>,
    boot: Mutex<u32>,
    next_chan: Mutex<u16>,
    handlers: RwLock<HashMap<u16, Handler>>,
    pools: Mutex<HashMap<u32, Arc<Pool>>>,
    chans: Mutex<HashMap<u16, Arc<MChan>>>,
    servers: Mutex<HashMap<(u32, u16), Arc<MServer>>>,
    sessions: Mutex<HashMap<(u32, u16), SessionRef>>,
    lowers: Mutex<HashMap<u32, (SessionRef, usize)>>,
    shepherds: Arc<Shepherds>,
}

impl Mrpc {
    /// Creates monolithic Sprite RPC above `lower` (raw ETH, IP, or VIP).
    /// `arp` is required when `lower` is raw ETH.
    pub fn new(me: ProtoId, lower: ProtoId, arp: Option<ProtoId>, cfg: MrpcConfig) -> Arc<Mrpc> {
        Arc::new_cyclic(|weak_self| Mrpc {
            weak_self: weak_self.clone(),
            me,
            lower,
            arp,
            cfg,
            lower_name: OnceLock::new(),
            my_ip: OnceLock::new(),
            boot: Mutex::new(0),
            next_chan: Mutex::new(0),
            handlers: RwLock::new(HashMap::new()),
            pools: Mutex::new(HashMap::new()),
            chans: Mutex::new(HashMap::new()),
            servers: Mutex::new(HashMap::new()),
            sessions: Mutex::new(HashMap::new()),
            lowers: Mutex::new(HashMap::new()),
            shepherds: Shepherds::new(cfg.shepherds),
        })
    }

    /// Shepherd-pool counters (zeros while the pool is disabled).
    pub fn shepherd_stats(&self) -> ShepherdStats {
        self.shepherds.stats()
    }

    fn self_arc(&self) -> Arc<Mrpc> {
        self.weak_self.upgrade().expect("mrpc alive")
    }

    fn my_ip(&self) -> IpAddr {
        *self.my_ip.get().expect("mrpc booted")
    }

    /// This kernel's boot incarnation.
    pub fn boot_id(&self) -> u32 {
        *self.boot.lock()
    }

    /// Overrides the boot id (tests simulate reincarnation).
    pub fn set_boot_id(&self, id: u32) {
        *self.boot.lock() = id;
    }

    /// Registers the procedure for `command`.
    pub fn serve<F>(&self, command: u16, f: F)
    where
        F: Fn(&Ctx, Message) -> XResult<Message> + Send + Sync + 'static,
    {
        self.handlers.write().insert(command, Box::new(f));
    }

    fn lower_for(&self, ctx: &Ctx, peer: IpAddr) -> XResult<(SessionRef, usize)> {
        if let Some(hit) = self.lowers.lock().get(&peer.0) {
            return Ok(hit.clone());
        }
        let lname = self.lower_name.get().expect("mrpc booted");
        let mut remote = Participant::host(peer);
        if *lname == "eth" {
            // Raw Ethernet below: map the peer's internet address to its
            // hardware address, exactly as VIP does.
            let arp = self.arp.ok_or_else(|| {
                XError::Config("sprite over raw eth needs an arp capability".into())
            })?;
            let hw = ctx
                .kernel()
                .control(ctx, arp, &ControlOp::Resolve(peer))?
                .eth()?;
            remote = remote.with_eth(hw);
        }
        let parts =
            ParticipantSet::pair(Participant::proto(rel_proto_num(lname, "sprite")?), remote);
        let sess = ctx.kernel().open(ctx, self.lower, self.me, &parts)?;
        let opt = sess
            .control(ctx, &ControlOp::GetOptPacket)
            .and_then(|r| r.size())
            .unwrap_or(1500);
        let frag_size = opt - SPRITE_HDR_LEN;
        self.lowers
            .lock()
            .insert(peer.0, (Arc::clone(&sess), frag_size));
        Ok((sess, frag_size))
    }

    fn pool_for(&self, ctx: &Ctx, peer: IpAddr) -> XResult<Arc<Pool>> {
        if let Some(p) = self.pools.lock().get(&peer.0) {
            return Ok(Arc::clone(p));
        }
        let mut chans = Vec::with_capacity(self.cfg.channels_per_peer);
        for _ in 0..self.cfg.channels_per_peer {
            let chan = {
                let mut c = self.next_chan.lock();
                *c = c.wrapping_add(1);
                *c
            };
            let mc = Arc::new(MChan {
                chan,
                st: Mutex::new(MChanState { seq: 0, out: None }),
            });
            self.chans.lock().insert(chan, Arc::clone(&mc));
            chans.push(mc);
            ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        }
        let pool = Arc::new(Pool {
            sema: SharedSema::new(self.cfg.channels_per_peer as i64),
            free: Mutex::new(chans),
        });
        Ok(Arc::clone(self.pools.lock().entry(peer.0).or_insert(pool)))
    }

    /// Sends the fragments of `msg` selected by `mask`.
    #[allow(clippy::too_many_arguments)]
    fn send_frags(
        &self,
        ctx: &Ctx,
        lower: &SessionRef,
        frag_size: usize,
        base: &SpriteHdr,
        msg: &Message,
        mask: u16,
    ) -> XResult<()> {
        let frags = split(msg, frag_size);
        for (i, frag) in frags.into_iter().enumerate() {
            if mask & (1 << i) == 0 {
                continue;
            }
            let mut hdr = *base;
            hdr.frag_mask = 1 << i;
            // The dual data-size/offset fields carry this packet's payload
            // extent, which is what lets Sprite RPC trim link-level padding
            // (the appendix notes the layered version doesn't need them).
            hdr.data1_sz = frag.len() as u16;
            hdr.data1_offset = (i * frag_size) as u16;
            let mut pkt = frag;
            ctx.push_header(&mut pkt, &hdr.encode());
            ctx.charge_layer_call();
            lower.push(ctx, pkt)?;
        }
        Ok(())
    }

    /// The full client call path.
    fn call(&self, ctx: &Ctx, peer: IpAddr, command: u16, args: Message) -> XResult<Message> {
        let (lower, frag_size) = self.lower_for(ctx, peer)?;
        let num_frags = args.len().max(1).div_ceil(frag_size);
        if num_frags > MAX_FRAGS {
            return Err(XError::TooBig {
                size: args.len(),
                max: MAX_FRAGS * frag_size,
            });
        }
        let pool = self.pool_for(ctx, peer)?;
        pool.sema.p(ctx); // Blocks when all channels are in use.
        let chan = pool.free.lock().pop().expect("semaphore-guarded pool");

        let result = self.call_on_channel(
            ctx,
            &chan,
            &lower,
            frag_size,
            peer,
            command,
            args,
            num_frags as u16,
        );

        pool.free.lock().push(chan);
        pool.sema.v(ctx);
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn call_on_channel(
        &self,
        ctx: &Ctx,
        chan: &Arc<MChan>,
        lower: &SessionRef,
        frag_size: usize,
        peer: IpAddr,
        command: u16,
        args: Message,
        num_frags: u16,
    ) -> XResult<Message> {
        let (seq, sema) = {
            let mut st = chan.st.lock();
            debug_assert!(st.out.is_none(), "channel pool guarantees exclusivity");
            st.seq = st.seq.wrapping_add(1);
            let sema = SharedSema::new(0);
            st.out = Some(Outstanding {
                seq: st.seq,
                sema: sema.clone(),
                reply_frags: Vec::new(),
                reply_mask: 0,
                reply_num: 0,
                done: None,
                server_has: 0,
                acked: false,
            });
            (st.seq, sema)
        };

        let mut hdr = SpriteHdr {
            flags: flags::REQUEST,
            clnt_host: self.my_ip(),
            srvr_host: peer,
            channel: chan.chan,
            srvr_process: 0,
            sequence_num: seq,
            num_frags,
            frag_mask: 0,
            command,
            boot_id: self.boot_id(),
            data1_sz: 0, // Filled per fragment at transmission time.
            data2_sz: 0,
            data1_offset: 0,
            data2_offset: 0,
        };
        let timeout = self.cfg.base_timeout_ns
            + self.cfg.per_frag_ns * u64::from(num_frags.saturating_sub(1));

        let mut attempts = 0u32;
        let mut send_mask = full_mask(num_frags);
        loop {
            if let Err(e) = self.send_frags(ctx, lower, frag_size, &hdr, &args, send_mask) {
                // A synchronous send failure must clear the outstanding
                // slot: the channel goes back to the pool on return, and
                // the next caller asserts it is clean.
                chan.st.lock().out = None;
                return Err(e);
            }
            let outcome = loop {
                let _ = sema.p_timeout(ctx, timeout);
                let mut st = chan.st.lock();
                let out = st.out.as_mut().expect("outstanding until cleared");
                if let Some(reply) = out.done.take() {
                    st.out = None;
                    break Some(reply);
                }
                if out.acked {
                    out.acked = false;
                    let has = out.server_has;
                    if ctx.mode() == Mode::Inline {
                        break None;
                    }
                    // The server told us which fragments it has; narrow the
                    // retransmission set and wait again.
                    send_mask = full_mask(num_frags) & !has;
                    continue;
                }
                break None;
            };
            if let Some(reply) = outcome {
                return Ok(reply);
            }
            ctx.note(RobustEvent::TimeoutFired);
            attempts += 1;
            if attempts > self.cfg.max_retries || ctx.mode() == Mode::Inline {
                chan.st.lock().out = None;
                return Err(XError::Timeout(format!(
                    "sprite rpc {command} seq {seq} to {peer} after {attempts} attempts"
                )));
            }
            ctx.note(RobustEvent::Retransmit);
            hdr.flags = flags::REQUEST | flags::PLEASE_ACK;
        }
    }

    fn server_for(&self, hdr: &SpriteHdr) -> Arc<MServer> {
        let key = (hdr.clnt_host.0, hdr.channel);
        let mut servers = self.servers.lock();
        Arc::clone(servers.entry(key).or_insert_with(|| {
            Arc::new(MServer {
                clnt: hdr.clnt_host,
                chan: hdr.channel,
                st: Mutex::new(ServerState {
                    last_boot: hdr.boot_id,
                    last_seq: 0,
                    in_progress: None,
                    dispatched: false,
                    req_num: 0,
                    req_mask: 0,
                    req_parts: Vec::new(),
                    saved_reply_seq: 0,
                    saved_reply: Vec::new(),
                }),
            })
        }))
    }

    fn request_in(&self, ctx: &Ctx, hdr: SpriteHdr, msg: Message) -> XResult<()> {
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let server = self.server_for(&hdr);

        enum Action {
            None,
            Ack(u16),
            ResendReply(Vec<Message>),
            Dispatch(Message),
        }
        let action = {
            let mut st = server.st.lock();
            if hdr.boot_id != st.last_boot {
                st.last_boot = hdr.boot_id;
                st.last_seq = 0;
                st.in_progress = None;
                st.dispatched = false;
                st.saved_reply.clear();
                st.saved_reply_seq = 0;
            }
            if st.saved_reply_seq == hdr.sequence_num && !st.saved_reply.is_empty() {
                // Client retransmission of an already-answered request.
                // Resend the saved reply — but only for the *first* fragment
                // of the retransmitted request, else every late duplicate
                // fragment of a multi-fragment request would trigger its own
                // full reply resend (a retransmission storm).
                ctx.note(RobustEvent::DuplicateSuppressed);
                if hdr.frag_mask & 1 != 0 {
                    Action::ResendReply(st.saved_reply.clone())
                } else {
                    Action::None
                }
            } else if hdr.sequence_num <= st.last_seq && st.last_seq != 0 {
                ctx.note(RobustEvent::DuplicateSuppressed);
                Action::None // Ancient duplicate.
            } else if st.in_progress == Some(hdr.sequence_num) && st.dispatched {
                // Retransmission while a shepherd is (or is queued to be)
                // executing this request: the fragments are consumed, so
                // just tell the client we have them all.
                ctx.note(RobustEvent::DuplicateSuppressed);
                Action::Ack(full_mask(st.req_num))
            } else {
                if st.in_progress != Some(hdr.sequence_num) {
                    // New request: implicitly acknowledges the saved reply.
                    st.in_progress = Some(hdr.sequence_num);
                    st.dispatched = false;
                    st.saved_reply.clear();
                    st.saved_reply_seq = 0;
                    st.req_num = hdr.num_frags;
                    st.req_mask = 0;
                    st.req_parts = (0..hdr.num_frags).map(|_| None).collect();
                }
                let idx = hdr.frag_mask.trailing_zeros() as usize;
                let dup = idx < st.req_parts.len() && st.req_parts[idx].is_some();
                if idx < st.req_parts.len() && !dup {
                    st.req_parts[idx] = Some(msg);
                    st.req_mask |= 1 << idx;
                }
                if st.req_mask == full_mask(st.req_num) {
                    let parts = std::mem::take(&mut st.req_parts);
                    st.dispatched = true;
                    Action::Dispatch(Message::concat(parts.into_iter().flatten()))
                } else if dup || hdr.flags & flags::PLEASE_ACK != 0 {
                    // Retransmission while incomplete: tell the client what
                    // we have so it can resend just the missing fragments.
                    Action::Ack(st.req_mask)
                } else {
                    Action::None
                }
            }
        };

        match action {
            Action::None => Ok(()),
            Action::Ack(have) => {
                let (lower, _) = self.lower_for(ctx, hdr.clnt_host)?;
                let ack = SpriteHdr {
                    flags: flags::ACK,
                    clnt_host: hdr.clnt_host,
                    srvr_host: self.my_ip(),
                    channel: hdr.channel,
                    sequence_num: hdr.sequence_num,
                    num_frags: hdr.num_frags,
                    frag_mask: have,
                    command: hdr.command,
                    boot_id: self.boot_id(),
                    ..SpriteHdr::default()
                };
                let mut pkt = ctx.empty_msg();
                ctx.push_header(&mut pkt, &ack.encode());
                ctx.charge_layer_call();
                lower.push(ctx, pkt)?;
                Ok(())
            }
            Action::ResendReply(frags) => {
                let (lower, _) = self.lower_for(ctx, hdr.clnt_host)?;
                for f in frags {
                    ctx.charge_layer_call();
                    lower.push(ctx, f)?;
                }
                Ok(())
            }
            Action::Dispatch(body) => {
                if self.shepherds.config().workers == 0 || ctx.mode() == Mode::Inline {
                    // Synchronous dispatch: the historical (and default) path.
                    return self.dispatch(ctx, &server, hdr, body);
                }
                let me = self.self_arc();
                let job_server = Arc::clone(&server);
                let submitted = self.shepherds.submit(
                    ctx,
                    Box::new(move |jctx| {
                        if me.dispatch(jctx, &job_server, hdr, body).is_err() {
                            jctx.trace_note("shepherd dispatch failed");
                        }
                    }),
                );
                match submitted {
                    Submitted::Ran | Submitted::Accepted => Ok(()),
                    Submitted::Overloaded(policy) => {
                        // Roll the channel back so the client's retransmission
                        // is treated as a fresh request.
                        {
                            let mut st = server.st.lock();
                            st.in_progress = None;
                            st.dispatched = false;
                            st.req_num = 0;
                            st.req_mask = 0;
                            st.req_parts = Vec::new();
                        }
                        match policy {
                            Overload::Drop => Ok(()),
                            // Sprite's NACK: "no server process available".
                            Overload::Reject => self.send_nack(ctx, &hdr),
                        }
                    }
                }
            }
        }
    }

    /// Tells the client no shepherd could take its request (Sprite's NACK);
    /// the client retries without waiting out the full timeout.
    fn send_nack(&self, ctx: &Ctx, hdr: &SpriteHdr) -> XResult<()> {
        let (lower, _) = self.lower_for(ctx, hdr.clnt_host)?;
        let nack = SpriteHdr {
            flags: flags::NACK,
            clnt_host: hdr.clnt_host,
            srvr_host: self.my_ip(),
            channel: hdr.channel,
            sequence_num: hdr.sequence_num,
            num_frags: 0,
            frag_mask: 0,
            command: hdr.command,
            boot_id: self.boot_id(),
            ..SpriteHdr::default()
        };
        let mut pkt = ctx.empty_msg();
        ctx.push_header(&mut pkt, &nack.encode());
        ctx.charge_layer_call();
        lower.push(ctx, pkt)?;
        Ok(())
    }

    /// Runs the procedure and sends (and saves) the fragmented reply.
    fn dispatch(
        &self,
        ctx: &Ctx,
        server: &Arc<MServer>,
        hdr: SpriteHdr,
        body: Message,
    ) -> XResult<()> {
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup); // Procedure table.
        let result = {
            let handlers = self.handlers.read();
            match handlers.get(&hdr.command) {
                Some(h) => h(ctx, body),
                None => Err(XError::Remote(format!("no procedure {}", hdr.command))),
            }
        };
        let reply_body = result.unwrap_or_else(|_| ctx.empty_msg());
        let (lower, frag_size) = self.lower_for(ctx, server.clnt)?;
        let num = reply_body.len().max(1).div_ceil(frag_size) as u16;
        let rhdr = SpriteHdr {
            flags: flags::REPLY,
            clnt_host: server.clnt,
            srvr_host: self.my_ip(),
            channel: server.chan,
            sequence_num: hdr.sequence_num,
            num_frags: num,
            frag_mask: 0,
            command: hdr.command,
            boot_id: self.boot_id(),
            ..SpriteHdr::default()
        };
        // Build, save, then send the wire fragments.
        let mut wire_frags = Vec::new();
        for (i, frag) in split(&reply_body, frag_size).into_iter().enumerate() {
            let mut h = rhdr;
            h.frag_mask = 1 << i;
            h.data1_sz = frag.len() as u16;
            h.data1_offset = (i * frag_size) as u16;
            let mut pkt = frag;
            ctx.push_header(&mut pkt, &h.encode());
            wire_frags.push(pkt);
        }
        {
            let mut st = server.st.lock();
            st.in_progress = None;
            st.last_seq = hdr.sequence_num;
            st.saved_reply_seq = hdr.sequence_num;
            st.saved_reply = wire_frags.clone();
        }
        for f in wire_frags {
            ctx.charge_layer_call();
            lower.push(ctx, f)?;
        }
        Ok(())
    }

    fn reply_in(&self, ctx: &Ctx, hdr: SpriteHdr, msg: Message) -> XResult<()> {
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let chan = self.chans.lock().get(&hdr.channel).cloned();
        let Some(chan) = chan else {
            return Ok(());
        };
        let mut st = chan.st.lock();
        let Some(out) = st.out.as_mut() else {
            return Ok(());
        };
        if out.seq != hdr.sequence_num {
            return Ok(());
        }
        if hdr.flags & flags::NACK != 0 {
            // Server overload rejection: wake the caller so it retransmits
            // (counted as a retry) instead of waiting out the timeout.
            let sema = out.sema.clone();
            drop(st);
            sema.v(ctx);
            return Ok(());
        }
        if hdr.flags & flags::ACK != 0 {
            out.acked = true;
            out.server_has = hdr.frag_mask;
            let sema = out.sema.clone();
            drop(st);
            sema.v(ctx);
            return Ok(());
        }
        // Reply fragment.
        if out.reply_frags.is_empty() {
            out.reply_num = hdr.num_frags;
            out.reply_frags = (0..hdr.num_frags).map(|_| None).collect();
        }
        let idx = hdr.frag_mask.trailing_zeros() as usize;
        if idx < out.reply_frags.len() && out.reply_frags[idx].is_none() {
            out.reply_frags[idx] = Some(msg);
            out.reply_mask |= 1 << idx;
        }
        if out.reply_mask == full_mask(out.reply_num) && out.done.is_none() {
            let parts = std::mem::take(&mut out.reply_frags);
            out.done = Some(Message::concat(parts.into_iter().flatten()));
            let sema = out.sema.clone();
            drop(st);
            sema.v(ctx);
        }
        Ok(())
    }
}

/// A client session bound to one (server, procedure).
pub struct MrpcSession {
    parent: Arc<Mrpc>,
    peer: IpAddr,
    command: u16,
}

impl Session for MrpcSession {
    fn protocol_id(&self) -> ProtoId {
        self.parent.me
    }

    fn push(&self, ctx: &Ctx, msg: Message) -> XResult<Option<Message>> {
        self.parent
            .call(ctx, self.peer, self.command, msg)
            .map(Some)
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            ControlOp::GetPeerHost => Ok(ControlRes::Ip(self.peer)),
            ControlOp::GetMaxPacket => {
                let (_, frag_size) = self.parent.lower_for(ctx, self.peer)?;
                Ok(ControlRes::Size(MAX_FRAGS * frag_size))
            }
            _ => Err(XError::Unsupported("mrpc session control")),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for Mrpc {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        crate::contracts::sprite()
    }

    fn name(&self) -> &'static str {
        "sprite"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let kernel = ctx.kernel();
        let lower = kernel.proto(self.lower)?;
        self.lower_name
            .set(lower.name())
            .map_err(|_| XError::Config("mrpc double boot".into()))?;
        *self.boot.lock() = (ctx.next_u64() & 0xffff_ffff) as u32 | 1;
        // Our host identity: from the lower protocol if it speaks internet
        // addresses, else from ARP (the raw-Ethernet configuration).
        let my_ip = lower
            .control(ctx, &ControlOp::GetMyHost)
            .and_then(|r| r.ip())
            .or_else(|_| match self.arp {
                Some(arp) => kernel.control(ctx, arp, &ControlOp::GetMyHost)?.ip(),
                None => Err(XError::Config(
                    "sprite cannot learn its host address".into(),
                )),
            })?;
        let _ = self.my_ip.set(my_ip);
        let parts =
            ParticipantSet::local(Participant::proto(rel_proto_num(lower.name(), "sprite")?));
        kernel.open_enable(ctx, self.lower, self.me, &parts)
    }

    fn reboot(&self, ctx: &Ctx) -> XResult<()> {
        // Fresh incarnation: new boot id, all channel/session state gone.
        // Registered procedures and graph wiring survive.
        *self.boot.lock() = (ctx.next_u64() & 0xffff_ffff) as u32 | 1;
        self.pools.lock().clear();
        self.chans.lock().clear();
        self.servers.lock().clear();
        self.sessions.lock().clear();
        self.lowers.lock().clear();
        Ok(())
    }

    fn open(&self, ctx: &Ctx, _upper: ProtoId, parts: &ParticipantSet) -> XResult<SessionRef> {
        let peer = parts
            .remote_part()
            .and_then(|p| p.host)
            .ok_or_else(|| XError::Config("sprite open needs a server host".into()))?;
        let command = parts
            .local_part()
            .and_then(|p| p.proto_num)
            .ok_or_else(|| XError::Config("sprite open needs a command".into()))?
            as u16;
        if let Some(s) = self.sessions.lock().get(&(peer.0, command)) {
            return Ok(Arc::clone(s));
        }
        ctx.charge_class(OpClass::SessionCreate, ctx.cost().session_create);
        let s: SessionRef = Arc::new(MrpcSession {
            parent: self.self_arc(),
            peer,
            command,
        });
        self.sessions
            .lock()
            .insert((peer.0, command), Arc::clone(&s));
        Ok(s)
    }

    fn open_enable(&self, _ctx: &Ctx, _upper: ProtoId, _parts: &ParticipantSet) -> XResult<()> {
        // Dispatch is by registered handlers.
        Ok(())
    }

    fn demux(&self, ctx: &Ctx, _lls: &SessionRef, mut msg: Message) -> XResult<()> {
        let bytes = ctx.pop_header(&mut msg, SPRITE_HDR_LEN)?;
        let hdr = SpriteHdr::decode(&bytes)?;
        drop(bytes);
        // Trim link-level padding using the packet's data size.
        if hdr.flags & (flags::REQUEST | flags::REPLY) != 0 {
            msg.truncate(usize::from(hdr.data1_sz));
        }
        if hdr.flags & flags::REQUEST != 0 {
            self.request_in(ctx, hdr, msg)
        } else {
            self.reply_in(ctx, hdr, msg)
        }
    }

    fn control(&self, ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            // The paper's example: "Sprite RPC reports that it never sends a
            // message greater than 1500-bytes (it has its own fragmentation
            // mechanism for handling larger messages)".
            ControlOp::GetMaxMsgSize => Ok(ControlRes::Size(1500)),
            ControlOp::GetMyBootId => Ok(ControlRes::U32(self.boot_id())),
            _ => {
                let _ = ctx;
                Err(XError::Unsupported("mrpc control"))
            }
        }
    }

    // Client channels are exclusively held during a call, so `out` is None
    // at quiescence and only each channel's sequence counter is captured.
    // Server channels keep durable at-most-once state — including partial
    // request reassemblies, which (unlike FRAGMENT's) have no reclaim timer
    // — so the whole ServerState is cloned.
    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        let pools = self
            .pools
            .lock()
            .iter()
            .map(|(k, p)| {
                (
                    *k,
                    MPoolSnap {
                        pool: Arc::clone(p),
                        sema: p.sema.snap_state(),
                        free: p.free.lock().clone(),
                    },
                )
            })
            .collect();
        let chans = self
            .chans
            .lock()
            .iter()
            .map(|(k, c)| {
                let st = c.st.lock();
                debug_assert!(
                    st.out.is_none(),
                    "mrpc snapshot with an outstanding call (not quiescent)"
                );
                (*k, (Arc::clone(c), st.seq))
            })
            .collect();
        let servers = self
            .servers
            .lock()
            .iter()
            .map(|(k, srv)| (*k, (Arc::clone(srv), srv.st.lock().clone())))
            .collect();
        Some(Arc::new(MrpcSnap {
            boot: self.boot_id(),
            next_chan: *self.next_chan.lock(),
            pools,
            chans,
            servers,
            sessions: self.sessions.lock().clone(),
            lowers: self.lowers.lock().clone(),
            shepherds: self.shepherds.stats(),
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<MrpcSnap>(blob, "sprite")?;
        *self.boot.lock() = s.boot;
        *self.next_chan.lock() = s.next_chan;
        {
            let mut pools = self.pools.lock();
            pools.clear();
            for (k, ps) in &s.pools {
                ps.pool.sema.restore_state(ps.sema);
                *ps.pool.free.lock() = ps.free.clone();
                pools.insert(*k, Arc::clone(&ps.pool));
            }
        }
        {
            let mut chans = self.chans.lock();
            chans.clear();
            for (k, (mc, seq)) in &s.chans {
                let mut st = mc.st.lock();
                st.seq = *seq;
                st.out = None;
                chans.insert(*k, Arc::clone(mc));
            }
        }
        {
            let mut servers = self.servers.lock();
            servers.clear();
            for (k, (srv, st)) in &s.servers {
                *srv.st.lock() = st.clone();
                servers.insert(*k, Arc::clone(srv));
            }
        }
        *self.sessions.lock() = s.sessions.clone();
        *self.lowers.lock() = s.lowers.clone();
        self.shepherds.restore_stats(s.shepherds);
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct MPoolSnap {
    pool: Arc<Pool>,
    sema: (i64, u64),
    free: Vec<Arc<MChan>>,
}

struct MrpcSnap {
    boot: u32,
    next_chan: u16,
    pools: HashMap<u32, MPoolSnap>,
    chans: HashMap<u16, (Arc<MChan>, u32)>,
    servers: HashMap<(u32, u16), (Arc<MServer>, ServerState)>,
    sessions: HashMap<(u32, u16), SessionRef>,
    lowers: HashMap<u32, (SessionRef, usize)>,
    shepherds: ShepherdStats,
}
