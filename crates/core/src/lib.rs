//! # xrpc — RPC in the x-kernel: the paper's contribution
//!
//! This crate implements both design techniques evaluated in *RPC in the
//! x-Kernel: Evaluating New Design Techniques* (SOSP '89), applied to
//! Sprite RPC:
//!
//! * **Virtual protocols** ([`vip`]): header-less protocols that multiplex
//!   messages onto lower protocols with equivalent semantics — [`vip::Vip`]
//!   dynamically inserts/deletes IP below RPC depending on whether the peer
//!   is on the local Ethernet, and the §4.3 pair
//!   [`vip::VipSize`]/[`vip::VipAddr`] dynamically deletes the FRAGMENT
//!   layer for small messages.
//! * **Layered protocols**: the monolithic Sprite RPC ([`mrpc::Mrpc`],
//!   `M_RPC`) decomposed into three independent, reusable protocols —
//!   [`select::Select`] (procedure selection and channel caching, plus the
//!   forwarding variant), [`channel::Channel`] (request/reply with
//!   at-most-once semantics), and [`fragment::Fragment`] (unreliable but
//!   persistent bulk transfer, reusable by Psync and Sun RPC). Their
//!   composition SELECT-CHANNEL-FRAGMENT is the paper's `L_RPC`.
//!
//! Stacks are configured with the x-kernel graph DSL; [`register_ctors`]
//! adds this crate's vocabulary:
//!
//! ```text
//! # Table I / II stacks:
//! vip -> ip eth arp
//! mrpc: sprite channels=8 -> vip        # M_RPC-VIP
//! # L_RPC-VIP:
//! fragment -> vip
//! channel -> fragment
//! select channels=8 -> channel
//! # §4.3: SELECT-CHANNEL-VIPSIZE-{FRAGMENT, VIPADDR}:
//! vipaddr -> ip eth arp
//! fragment -> vipaddr
//! vipsize -> fragment vipaddr
//! channel -> vipsize
//! select -> channel
//! ```
//!
//! ## End-to-end example
//!
//! ```
//! use xkernel::prelude::*;
//! use xkernel::sim::{Sim, SimConfig};
//!
//! // Two hosts on a simulated Ethernet, layered RPC over VIP.
//! let sim = Sim::new(SimConfig::inline_mode());
//! let net = simnet::SimNet::new(&sim);
//! let lan = net.add_lan(simnet::LanConfig::default());
//! let mut reg = xkernel::graph::ProtocolRegistry::new();
//! inet::register_ctors(&mut reg);
//! xrpc::register_ctors(&mut reg);
//!
//! let graph = |ip: &str| format!(
//!     "{}vip -> ip eth arp\nfragment -> vip\nchannel -> fragment\nselect -> channel\n",
//!     inet::standard_graph("nic0", ip),
//! );
//! let client = Kernel::new(&sim, "client");
//! net.attach(&client, lan, "nic0", EthAddr::from_index(1)).unwrap();
//! reg.build(&sim, &client, &graph("10.0.0.1")).unwrap();
//! let server = Kernel::new(&sim, "server");
//! net.attach(&server, lan, "nic0", EthAddr::from_index(2)).unwrap();
//! reg.build(&sim, &server, &graph("10.0.0.2")).unwrap();
//!
//! // A procedure, and a call against it.
//! xrpc::serve(&server, "select", 7, |_ctx, msg| Ok(msg)).unwrap();
//! let ctx = sim.ctx(client.host());
//! let reply = xrpc::call(
//!     &ctx, &client, "select", IpAddr::new(10, 0, 0, 2), 7, b"ping".to_vec(),
//! ).unwrap();
//! assert_eq!(reply, b"ping");
//! ```

#![warn(missing_docs)]

pub mod channel;
pub mod contracts;
pub mod fragment;
pub mod hdr;
pub mod mrpc;
pub mod pinger;
pub mod protnum;
pub mod rto;
pub mod select;
pub mod stacks;
pub mod vip;

use std::sync::Arc;

use xkernel::graph::{GraphArgs, ProtocolRegistry};
use xkernel::prelude::*;

/// Registers this crate's protocol constructors into the graph vocabulary.
///
/// * `sprite [channels=N] -> <delivery> [arp]` — monolithic Sprite RPC
///   (`M_RPC`); the ARP capability is required over raw ETH
/// * `fragment -> <delivery>` — the FRAGMENT layer
/// * `channel -> <packet mover>` — the CHANNEL layer
/// * `select [channels=N] -> <channel>` — the SELECT layer
/// * `rdgram -> <channel>` — reliable datagrams over CHANNEL
/// * `vip -> <ip> <eth> <arp>` — Virtual IP
/// * `vipaddr -> <ip> <eth> <arp>` — open-time ETH/IP selection
/// * `vipsize -> <fragment> <direct>` — per-push FRAGMENT bypass
/// * `pinger [echo=1] -> <lower>` — the Table III measurement harness
pub fn register_ctors(reg: &mut ProtocolRegistry) {
    reg.add_contract(contracts::sprite());
    reg.add_contract(contracts::fragment());
    reg.add_contract(contracts::channel());
    reg.add_contract(contracts::select());
    reg.add_contract(contracts::rdgram());
    reg.add_contract(contracts::vip());
    reg.add_contract(contracts::vipaddr());
    reg.add_contract(contracts::vipsize());
    reg.add_contract(contracts::pinger());
    reg.add("sprite", |a: &GraphArgs<'_>| {
        let cfg = mrpc::MrpcConfig {
            channels_per_peer: a.param_u64("channels", 8)? as usize,
            shepherds: xkernel::shepherd::ShepherdConfig::from_params(
                a.param_u64("shepherds", 0)?,
                a.param_u64("pending", 16)?,
                a.params.get("policy").map(String::as_str),
            ),
            ..mrpc::MrpcConfig::default()
        };
        // A second lower capability, when present, is ARP (required over
        // raw ETH).
        Ok(mrpc::Mrpc::new(a.me, a.down(0)?, a.down.get(1).copied(), cfg) as ProtocolRef)
    });
    reg.add("fragment", |a: &GraphArgs<'_>| {
        Ok(
            fragment::Fragment::new(a.me, a.down(0)?, fragment::FragConfig::default())
                as ProtocolRef,
        )
    });
    reg.add("channel", |a: &GraphArgs<'_>| {
        let cfg = channel::ChanConfig {
            adaptive: a.param_u64("adaptive", 1)? != 0,
            ..channel::ChanConfig::default()
        };
        Ok(channel::Channel::new(a.me, a.down(0)?, cfg) as ProtocolRef)
    });
    reg.add("select", |a: &GraphArgs<'_>| {
        let cfg = select::SelectConfig {
            channels_per_peer: a.param_u64("channels", 8)? as usize,
            shepherds: xkernel::shepherd::ShepherdConfig::from_params(
                a.param_u64("shepherds", 0)?,
                a.param_u64("pending", 16)?,
                a.params.get("policy").map(String::as_str),
            ),
        };
        Ok(select::Select::new(a.me, a.down(0)?, cfg) as ProtocolRef)
    });
    reg.add("rdgram", |a: &GraphArgs<'_>| {
        Ok(select::Rdgram::new(a.me, a.down(0)?) as ProtocolRef)
    });
    reg.add("vip", |a: &GraphArgs<'_>| {
        Ok(vip::Vip::new(a.me, a.down(0)?, a.down(1)?, a.down(2)?) as ProtocolRef)
    });
    reg.add("vipaddr", |a: &GraphArgs<'_>| {
        Ok(vip::VipAddr::new(a.me, a.down(0)?, a.down(1)?, a.down(2)?) as ProtocolRef)
    });
    reg.add("vipsize", |a: &GraphArgs<'_>| {
        Ok(vip::VipSize::new(a.me, a.down(0)?, a.down(1)?) as ProtocolRef)
    });
    reg.add("pinger", |a: &GraphArgs<'_>| {
        let echo = a.param_u64("echo", 0)? != 0;
        Ok(pinger::Pinger::new(a.me, a.down(0)?, echo) as ProtocolRef)
    });
}

/// Invokes procedure `command` on `server` through the RPC protocol
/// registered as `proto` (a `sprite` or `select` instance), returning the
/// reply bytes. This is the whole client API: open (cached) + push.
pub fn call(
    ctx: &Ctx,
    kernel: &Arc<Kernel>,
    proto: &str,
    server: IpAddr,
    command: u16,
    args: Vec<u8>,
) -> XResult<Vec<u8>> {
    let id = kernel.lookup(proto)?;
    let parts = ParticipantSet::pair(
        Participant::proto(u32::from(command)),
        Participant::host(server),
    );
    let sess = kernel.open(ctx, id, id, &parts)?;
    let reply = sess
        .push(ctx, ctx.msg(args))?
        .ok_or_else(|| XError::Config("rpc session returned no reply".into()))?;
    Ok(reply.to_vec())
}

/// Registers a server procedure on the RPC protocol registered as `proto`
/// (a `sprite` or `select` instance).
pub fn serve<F>(kernel: &Arc<Kernel>, proto: &str, command: u16, f: F) -> XResult<()>
where
    F: Fn(&Ctx, Message) -> XResult<Message> + Send + Sync + Clone + 'static,
{
    let p = kernel.get(proto)?;
    if let Some(s) = p.as_any().downcast_ref::<select::Select>() {
        s.serve(command, f);
        return Ok(());
    }
    if let Some(m) = p.as_any().downcast_ref::<mrpc::Mrpc>() {
        m.serve(command, f);
        return Ok(());
    }
    Err(XError::Config(format!(
        "protocol '{proto}' does not dispatch procedures"
    )))
}

/// A null procedure (echoes nothing) and an echo procedure, used by the
/// benchmarks and examples.
pub mod procs {
    use super::*;

    /// The latency-test procedure id: null request, null reply.
    pub const NULL_PROC: u16 = 0;
    /// Echoes the request body back.
    pub const ECHO_PROC: u16 = 1;
    /// Consumes the request, replies null (the throughput test shape).
    pub const SINK_PROC: u16 = 2;

    /// Registers the three standard procedures on `proto`.
    pub fn register_standard(kernel: &Arc<Kernel>, proto: &str) -> XResult<()> {
        serve(kernel, proto, NULL_PROC, |_ctx, _msg| Ok(Message::empty()))?;
        serve(kernel, proto, ECHO_PROC, |_ctx, msg| Ok(msg))?;
        serve(kernel, proto, SINK_PROC, |_ctx, _msg| Ok(Message::empty()))
    }
}
