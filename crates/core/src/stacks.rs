//! The canonical protocol configurations from the paper's evaluation,
//! as graph-DSL fragments appended to the standard inet graph.
//!
//! Shared by the integration tests, the benchmark harness, and the
//! examples, so every consumer measures exactly the same stacks.

/// One named configuration: graph lines plus the entry protocol's instance
/// name (a `sprite` or `select` instance whose sessions perform RPCs).
#[derive(Clone, Copy, Debug)]
pub struct StackDef {
    /// Configuration name as the paper spells it.
    pub name: &'static str,
    /// Graph lines appended to the standard inet graph.
    pub graph: &'static str,
    /// The RPC entry protocol instance.
    pub entry: &'static str,
}

/// `M_RPC-ETH`: monolithic Sprite RPC directly on the Ethernet.
pub const M_RPC_ETH: StackDef = StackDef {
    name: "M_RPC-ETH",
    graph: "mrpc: sprite -> eth arp\n",
    entry: "mrpc",
};

/// `M_RPC-IP`: monolithic Sprite RPC over IP (the fixed 21% latency tax the
/// paper quantifies).
pub const M_RPC_IP: StackDef = StackDef {
    name: "M_RPC-IP",
    graph: "mrpc: sprite -> ip\n",
    entry: "mrpc",
};

/// `M_RPC-VIP`: monolithic Sprite RPC over the virtual protocol.
pub const M_RPC_VIP: StackDef = StackDef {
    name: "M_RPC-VIP",
    graph: "vip -> ip eth arp\nmrpc: sprite -> vip\n",
    entry: "mrpc",
};

/// `L_RPC-VIP`: the layered decomposition SELECT-CHANNEL-FRAGMENT over VIP.
pub const L_RPC_VIP: StackDef = StackDef {
    name: "L_RPC-VIP",
    graph: "vip -> ip eth arp\n\
            fragment -> vip\n\
            channel -> fragment\n\
            select -> channel\n",
    entry: "select",
};

/// §4.3's alternative configuration: SELECT-CHANNEL-VIPSIZE with FRAGMENT
/// *below* the virtual protocol, dynamically bypassed for small messages.
pub const L_RPC_VIPSIZE: StackDef = StackDef {
    name: "L_RPC-VIPSIZE",
    graph: "vipaddr -> ip eth arp\n\
            fragment -> vipaddr\n\
            vipsize -> fragment vipaddr\n\
            channel -> vipsize\n\
            select -> channel\n",
    entry: "select",
};

/// Every full RPC configuration, in the order the paper's tables present
/// them.
pub const ALL_RPC_STACKS: [StackDef; 5] =
    [M_RPC_ETH, M_RPC_IP, M_RPC_VIP, L_RPC_VIP, L_RPC_VIPSIZE];

/// Table III partial stacks, measured with the [`crate::pinger`] protocol:
/// each entry is (name, graph, the pinger's lower protocol instance).
pub const TABLE3_STACKS: [(&str, &str, &str); 4] = [
    ("VIP", "vip -> ip eth arp\n", "vip"),
    (
        "FRAGMENT-VIP",
        "vip -> ip eth arp\nfragment -> vip\n",
        "fragment",
    ),
    (
        "CHANNEL-FRAGMENT-VIP",
        "vip -> ip eth arp\nfragment -> vip\nchannel -> fragment\n",
        "channel",
    ),
    (
        "SELECT-CHANNEL-FRAGMENT-VIP",
        "vip -> ip eth arp\nfragment -> vip\nchannel -> fragment\nselect -> channel\n",
        "select",
    ),
];
