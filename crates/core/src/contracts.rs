//! Lint contracts for the Sprite RPC protocols: the monolithic `sprite`,
//! the layered SELECT/CHANNEL/FRAGMENT decomposition, the virtual
//! protocols (VIP and variants), and the `pinger` measurement harness.

use xkernel::lint::{AddrKind, BlockPoint, ProtoContract, SemaContract};

use crate::hdr::{CHANNEL_HDR_LEN, FRAGMENT_HDR_LEN, SELECT_HDR_LEN, SPRITE_HDR_LEN};

const REPLY_WAITER: SemaContract = SemaContract {
    acquires_pool: true,
    awaits_reply: true,
    wakes_from_demux: true,
};

/// The lock-acquisition order every blocking layer observes inside the
/// kernel: the scheduler lock strictly before the per-host state lock
/// (`sim.rs` documents sched -> hosts -> trace; trace is a leaf no
/// protocol touches directly). XK015 rejects any contract set that merges
/// into a cycle with this.
const KERNEL_LOCKS: [&str; 2] = ["sched", "hosts"];

/// Monolithic Sprite RPC: delivery over internet or raw-hardware
/// addressing (ARP as an optional trailing resolver capability);
/// fragments internally; blocks shepherds on per-channel reply semaphores
/// signaled from demux.
pub fn sprite() -> ProtoContract {
    ProtoContract::new("sprite", AddrKind::Rpc)
        .lower(&[AddrKind::Internet, AddrKind::Hardware])
        .optional_lower(&[AddrKind::Resolver])
        .header(SPRITE_HDR_LEN)
        .fragments()
        .demux_key_bits(32) // channel + sequence
        .param("channels", false, true)
        .param("shepherds", false, true)
        .param("pending", false, true)
        .param("policy", false, false)
        .sema(REPLY_WAITER)
        .blocks(&[BlockPoint::Sema, BlockPoint::Timer])
        .locks(&KERNEL_LOCKS)
        .clears_slot_on_error()
        .crashable()
        .reboots()
}

/// FRAGMENT: cuts oversized messages to the lower layer's packet size.
/// Holds reassembly state that must be dropped on reboot.
pub fn fragment() -> ProtoContract {
    ProtoContract::new("fragment", AddrKind::Internet)
        .lower(&[AddrKind::Internet])
        .header(FRAGMENT_HDR_LEN)
        .fragments()
        .demux_key_bits(32)
        .crashable()
        .reboots()
}

/// CHANNEL: at-most-once request/reply; the layer that owns the blocking
/// reply wait in the layered stack. `clears_slot_on_error` records the PR 2
/// audit: timeout and push-failure paths both release the channel slot.
pub fn channel() -> ProtoContract {
    ProtoContract::new("channel", AddrKind::Rpc)
        .lower(&[AddrKind::Internet])
        .header(CHANNEL_HDR_LEN)
        .demux_key_bits(32)
        .param("adaptive", false, true)
        .sema(SemaContract {
            acquires_pool: false,
            awaits_reply: true,
            wakes_from_demux: true,
        })
        .blocks(&[BlockPoint::Sema, BlockPoint::Timer])
        .locks(&KERNEL_LOCKS)
        .clears_slot_on_error()
        .crashable()
        .reboots()
}

/// SELECT: procedure selection + channel allocation. Its semaphore is a
/// bounded resource pool (P in push, V on completion) — not a reply wait,
/// so it composes over CHANNEL without nesting shepherd waits.
pub fn select() -> ProtoContract {
    ProtoContract::new("select", AddrKind::Rpc)
        .lower(&[AddrKind::Rpc])
        .header(SELECT_HDR_LEN)
        .demux_key_bits(16)
        .param("channels", false, true)
        .param("shepherds", false, true)
        .param("pending", false, true)
        .param("policy", false, false)
        .sema(SemaContract {
            acquires_pool: true,
            awaits_reply: false,
            wakes_from_demux: false,
        })
        .blocks(&[BlockPoint::Sema])
        .locks(&KERNEL_LOCKS)
        .crashable()
        .reboots()
}

/// RDGRAM: reliable datagrams over CHANNEL.
pub fn rdgram() -> ProtoContract {
    ProtoContract::new("rdgram", AddrKind::Rpc)
        .lower(&[AddrKind::Rpc])
        .header(SELECT_HDR_LEN)
        .demux_key_bits(16)
}

/// VIP: virtualizes the participant address — picks ETH or IP per peer at
/// open time. Headerless, but the identity a lower layer sees is no longer
/// the stable end-to-end participant (the Section 5 rule's lower half).
pub fn vip() -> ProtoContract {
    ProtoContract::new("vip", AddrKind::Internet)
        .lower(&[AddrKind::Internet])
        .lower(&[AddrKind::Hardware])
        .lower(&[AddrKind::Resolver])
        .virtualizes_identity()
}

/// VIPADDR: the open-time address-selection half of VIP.
pub fn vipaddr() -> ProtoContract {
    let mut c = vip();
    c.name = "vipaddr".into();
    c
}

/// VIPSIZE: per-push FRAGMENT bypass over (fragmenting, direct) lowers.
pub fn vipsize() -> ProtoContract {
    ProtoContract::new("vipsize", AddrKind::Internet)
        .lower(&[AddrKind::Internet])
        .lower(&[AddrKind::Internet])
        .virtualizes_identity()
}

/// Pinger: the Table III harness. Its echo wait lives in the application
/// call `rtt`, not in `push` on the data path, so it declares no shepherd
/// semaphore behavior and nests cleanly over CHANNEL.
pub fn pinger() -> ProtoContract {
    ProtoContract::new("pinger", AddrKind::Rpc)
        .lower(&[AddrKind::Internet, AddrKind::Rpc, AddrKind::Transport])
        .header(8)
        .param("echo", false, true)
}
