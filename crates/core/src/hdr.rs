//! Wire headers, field-for-field after the C structs in the paper's
//! appendix.
//!
//! The paper's syntactic-equivalence claim is checked structurally by tests
//! here: the union of the SELECT, CHANNEL, and FRAGMENT headers is nearly
//! identical to the monolithic Sprite header — the layered version only
//! *duplicates* some fields (each of FRAGMENT and CHANNEL has its own
//! sequence number) and *adds* a protocol-number field per layer (required
//! for a layer to stand alone and serve multiple high-level protocols).
//! Like the paper's implementation, hosts are identified by 32-bit internet
//! addresses (Sprite host ids are also 32 bits).

use xkernel::prelude::*;

/// Message-kind flags shared by Sprite RPC and CHANNEL.
pub mod flags {
    /// This message is a request.
    pub const REQUEST: u16 = 0x0001;
    /// This message is a reply.
    pub const REPLY: u16 = 0x0002;
    /// Explicit acknowledgement ("still working on it").
    pub const ACK: u16 = 0x0004;
    /// Sender asks the receiver to acknowledge explicitly.
    pub const PLEASE_ACK: u16 = 0x0008;
    /// Negative ack: the frag_mask names *missing* fragments to resend.
    pub const NACK: u16 = 0x0010;
}

/// The monolithic Sprite RPC header (`sprite_hdr` in the appendix).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SpriteHdr {
    /// Message kind bits (see [`flags`]).
    pub flags: u16,
    /// Client host address.
    pub clnt_host: IpAddr,
    /// Server host address.
    pub srvr_host: IpAddr,
    /// Channel index.
    pub channel: u16,
    /// Server process hint (kept for layout fidelity; we dispatch on
    /// `command`).
    pub srvr_process: u16,
    /// RPC sequence number (at-most-once identity).
    pub sequence_num: u32,
    /// Number of fragments in this message.
    pub num_frags: u16,
    /// Bitmask of which fragment(s) this packet carries — or, with
    /// [`flags::NACK`]/[`flags::ACK`], which fragments were received.
    pub frag_mask: u16,
    /// Procedure id.
    pub command: u16,
    /// Sender's boot incarnation.
    pub boot_id: u32,
    /// First data area size.
    pub data1_sz: u16,
    /// Second data area size (unused by the layered version; see appendix
    /// note).
    pub data2_sz: u16,
    /// First data area offset.
    pub data1_offset: u16,
    /// Second data area offset.
    pub data2_offset: u16,
}

/// Encoded size of [`SpriteHdr`].
pub const SPRITE_HDR_LEN: usize = 36;

impl SpriteHdr {
    /// Encodes to network byte order.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(SPRITE_HDR_LEN);
        w.u16(self.flags)
            .ip(self.clnt_host)
            .ip(self.srvr_host)
            .u16(self.channel)
            .u16(self.srvr_process)
            .u32(self.sequence_num)
            .u16(self.num_frags)
            .u16(self.frag_mask)
            .u16(self.command)
            .u32(self.boot_id)
            .u16(self.data1_sz)
            .u16(self.data2_sz)
            .u16(self.data1_offset)
            .u16(self.data2_offset);
        w.finish()
    }

    /// Decodes from network byte order.
    pub fn decode(bytes: &[u8]) -> XResult<SpriteHdr> {
        let mut r = WireReader::new(bytes, "sprite_hdr");
        Ok(SpriteHdr {
            flags: r.u16()?,
            clnt_host: r.ip()?,
            srvr_host: r.ip()?,
            channel: r.u16()?,
            srvr_process: r.u16()?,
            sequence_num: r.u32()?,
            num_frags: r.u16()?,
            frag_mask: r.u16()?,
            command: r.u16()?,
            boot_id: r.u32()?,
            data1_sz: r.u16()?,
            data2_sz: r.u16()?,
            data1_offset: r.u16()?,
            data2_offset: r.u16()?,
        })
    }
}

/// The SELECT layer header (`select_hdr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct SelectHdr {
    /// Request (0) or reply (1).
    pub typ: u8,
    /// Procedure id.
    pub command: u16,
    /// Reply status: 0 ok, non-zero server-side error code.
    pub status: u8,
}

/// Encoded size of [`SelectHdr`].
pub const SELECT_HDR_LEN: usize = 4;

impl SelectHdr {
    /// Encodes to network byte order.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(SELECT_HDR_LEN);
        w.u8(self.typ).u16(self.command).u8(self.status);
        w.finish()
    }

    /// Decodes from network byte order.
    pub fn decode(bytes: &[u8]) -> XResult<SelectHdr> {
        let mut r = WireReader::new(bytes, "select_hdr");
        Ok(SelectHdr {
            typ: r.u8()?,
            command: r.u16()?,
            status: r.u8()?,
        })
    }
}

/// The CHANNEL layer header (`channel_hdr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct ChannelHdr {
    /// Message kind bits (see [`flags`]).
    pub flags: u16,
    /// Channel index (client-scoped; unique per client kernel).
    pub channel: u16,
    /// The high-level protocol this channel serves — present because
    /// CHANNEL, as an independent protocol, "must have its own protocol
    /// number (type) field".
    pub protocol_num: u32,
    /// Request sequence number (at-most-once identity).
    pub sequence_num: u32,
    /// Server-reported error code (0 = ok).
    pub error: u16,
    /// Sender's boot incarnation.
    pub boot_id: u32,
}

/// Encoded size of [`ChannelHdr`].
pub const CHANNEL_HDR_LEN: usize = 18;

impl ChannelHdr {
    /// Encodes to network byte order.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(CHANNEL_HDR_LEN);
        w.u16(self.flags)
            .u16(self.channel)
            .u32(self.protocol_num)
            .u32(self.sequence_num)
            .u16(self.error)
            .u32(self.boot_id);
        w.finish()
    }

    /// Decodes from network byte order.
    pub fn decode(bytes: &[u8]) -> XResult<ChannelHdr> {
        let mut r = WireReader::new(bytes, "channel_hdr");
        Ok(ChannelHdr {
            flags: r.u16()?,
            channel: r.u16()?,
            protocol_num: r.u32()?,
            sequence_num: r.u32()?,
            error: r.u16()?,
            boot_id: r.u32()?,
        })
    }
}

/// FRAGMENT packet kinds.
pub mod frag_type {
    /// Carries one fragment of a message.
    pub const DATA: u8 = 1;
    /// Receiver-to-sender request for missing fragments (mask = missing).
    pub const NACK: u8 = 2;
}

/// The FRAGMENT layer header (`fragment_hdr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct FragmentHdr {
    /// Packet kind (see [`frag_type`]).
    pub typ: u8,
    /// Sending host of the original message.
    pub clnt_host: IpAddr,
    /// Receiving host of the original message.
    pub srvr_host: IpAddr,
    /// The high-level protocol the message belongs to.
    pub protocol_num: u32,
    /// FRAGMENT-level message sequence number (unique per sender).
    pub sequence_num: u32,
    /// Total fragments in the message.
    pub num_frags: u16,
    /// Bit i set = this packet carries (or, for NACK, requests) fragment i.
    pub frag_mask: u16,
    /// Total message length in bytes.
    pub len: u16,
}

/// Encoded size of [`FragmentHdr`].
pub const FRAGMENT_HDR_LEN: usize = 23;

impl FragmentHdr {
    /// Encodes to network byte order.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::with_capacity(FRAGMENT_HDR_LEN);
        w.u8(self.typ)
            .ip(self.clnt_host)
            .ip(self.srvr_host)
            .u32(self.protocol_num)
            .u32(self.sequence_num)
            .u16(self.num_frags)
            .u16(self.frag_mask)
            .u16(self.len);
        w.finish()
    }

    /// Decodes from network byte order.
    pub fn decode(bytes: &[u8]) -> XResult<FragmentHdr> {
        let mut r = WireReader::new(bytes, "fragment_hdr");
        Ok(FragmentHdr {
            typ: r.u8()?,
            clnt_host: r.ip()?,
            srvr_host: r.ip()?,
            protocol_num: r.u32()?,
            sequence_num: r.u32()?,
            num_frags: r.u16()?,
            frag_mask: r.u16()?,
            len: r.u16()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprite_hdr_roundtrip_and_size() {
        let h = SpriteHdr {
            flags: flags::REQUEST | flags::PLEASE_ACK,
            clnt_host: IpAddr::new(10, 0, 0, 1),
            srvr_host: IpAddr::new(10, 0, 0, 2),
            channel: 3,
            srvr_process: 9,
            sequence_num: 77,
            num_frags: 11,
            frag_mask: 0b111_1111_1111,
            command: 42,
            boot_id: 0xdead,
            data1_sz: 100,
            data2_sz: 0,
            data1_offset: 0,
            data2_offset: 0,
        };
        let b = h.encode();
        assert_eq!(b.len(), SPRITE_HDR_LEN);
        assert_eq!(SpriteHdr::decode(&b).unwrap(), h);
    }

    #[test]
    fn select_hdr_roundtrip_and_size() {
        let h = SelectHdr {
            typ: 1,
            command: 513,
            status: 7,
        };
        let b = h.encode();
        assert_eq!(b.len(), SELECT_HDR_LEN);
        assert_eq!(SelectHdr::decode(&b).unwrap(), h);
    }

    #[test]
    fn channel_hdr_roundtrip_and_size() {
        let h = ChannelHdr {
            flags: flags::REPLY,
            channel: 12,
            protocol_num: 103,
            sequence_num: 9000,
            error: 2,
            boot_id: 0xbeef,
        };
        let b = h.encode();
        assert_eq!(b.len(), CHANNEL_HDR_LEN);
        assert_eq!(ChannelHdr::decode(&b).unwrap(), h);
    }

    #[test]
    fn fragment_hdr_roundtrip_and_size() {
        let h = FragmentHdr {
            typ: frag_type::NACK,
            clnt_host: IpAddr::new(1, 2, 3, 4),
            srvr_host: IpAddr::new(5, 6, 7, 8),
            protocol_num: 103,
            sequence_num: 31337,
            num_frags: 11,
            frag_mask: 0b101,
            len: 16_000,
        };
        let b = h.encode();
        assert_eq!(b.len(), FRAGMENT_HDR_LEN);
        assert_eq!(FragmentHdr::decode(&b).unwrap(), h);
    }

    /// The paper's syntactic-equivalence claim, checked structurally: every
    /// monolithic field appears in some layer's header, the layered union
    /// adds only protocol-number fields (one per reusable layer) and the
    /// SELECT type/status bytes, and duplicates only sequence numbers (and
    /// the flags carried by both CHANNEL and FRAGMENT's type byte).
    #[test]
    fn layered_headers_cover_the_monolithic_header() {
        // Monolithic fields → the layer that carries them.
        let coverage = [
            ("flags", "channel"),
            ("clnt_host", "fragment"),
            ("srvr_host", "fragment"),
            ("channel", "channel"),
            ("sequence_num", "channel+fragment (duplicated)"),
            ("num_frags", "fragment"),
            ("frag_mask", "fragment"),
            ("command", "select"),
            ("boot_id", "channel"),
            ("data1_sz", "fragment.len"),
            // data2_sz / offsets: the appendix notes layered RPC does not
            // need the dual data areas at all.
        ];
        assert_eq!(coverage.len(), 10);
        // Size accounting: union of layered headers ≈ monolithic + the
        // per-layer protocol numbers and the duplicated sequence number,
        // partly offset by dropping the dual data-area fields the appendix
        // notes are unnecessary.
        let layered = SELECT_HDR_LEN + CHANNEL_HDR_LEN + FRAGMENT_HDR_LEN;
        assert_eq!(layered, 45);
        assert_eq!(SPRITE_HDR_LEN, 36);
        let extra = layered as i64 - SPRITE_HDR_LEN as i64;
        // +8 two protocol-number fields, +4 duplicated sequence number,
        // +3 per-layer type/status framing, +2 error field, -8 dropped
        // data2/offset fields = +9 bytes.
        assert_eq!(extra, 9);
    }
}
