//! Small, fully-enumerable concurrency scenarios.
//!
//! Three toys exercise the checker end to end:
//!
//! * **handshake** — the acceptance scenario: three processes on one host
//!   chained through two semaphores (`lp0` signals `A`, `lp1` consumes
//!   `A` and signals `B`, `lp2` consumes `B`). Its schedule space is
//!   exactly the interleavings of the three spawns (3 · 2 = 6), small
//!   enough to visit exhaustively and prove the invariants on every one.
//! * **deadlock** — two toy *protocols* (`dl_ab`, `dl_ba`) whose boot
//!   processes acquire the same two mutex-style semaphores in opposite
//!   orders. The graph spec (`specs/bad/deadlock-toy.xk`) is rejected
//!   statically by XK015 (conflicting lock orders); built unchecked, it
//!   deadlocks on *every* schedule, and the wait-for-graph scan reports
//!   the exact cycle with a replayable repro string.
//! * **crosshost** — a semaphore shared across two simulated hosts, V'd
//!   on one and awaited on the other: the un-synchronized cross-host
//!   signal the checker flags as `CrossHostSignal`.

use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use xkernel::check::{CheckReport, Violation, ViolationKind};
use xkernel::graph::{GraphArgs, ProtocolRegistry};
use xkernel::lint::{AddrKind, BlockPoint, ProtoContract};
use xkernel::prelude::*;
use xkernel::sim::{ScheduleChooser, SimConfig};

/// How long each deadlock-toy process sleeps between its first and second
/// acquire — long enough that both processes hold their first semaphore
/// before either attempts its second, on every schedule.
const DL_SLEEP_NS: u64 = 1_000_000;

/// The deliberately deadlocking two-protocol graph; kept in
/// `specs/bad/deadlock-toy.xk` for the lint suite, inlined here for the
/// dynamic runner (built with `build_unchecked` — the linter rejects it).
pub const DEADLOCK_TOY_GRAPH: &str = "ab: dl_ab\nba: dl_ba -> ab\n";

/// Outcome of one toy schedule: enough to assert invariants and replay.
pub struct ToyOutcome {
    /// Processes still blocked at drain.
    pub blocked: usize,
    /// Processes that ran to completion.
    pub done: usize,
    /// Scheduler events executed.
    pub events: u64,
    /// The schedule fingerprint.
    pub sched_hash: u64,
    /// The checker's full report.
    pub check: CheckReport,
    /// One repro string per violation, same order.
    pub repros: Vec<String>,
}

fn outcome(sim: &Sim, run: xkernel::sim::RunReport, done: usize) -> ToyOutcome {
    let check = sim.check_report();
    let repros = check.violations.iter().map(|v| sim.repro(v)).collect();
    ToyOutcome {
        blocked: run.blocked,
        done,
        events: run.events,
        sched_hash: run.sched_hash,
        check,
        repros,
    }
}

/// Runs the 3-process / 2-semaphore handshake under `chooser` (or the
/// default insertion-order schedule). Every schedule must complete with
/// no violations.
pub fn run_handshake(seed: u64, chooser: Option<Box<dyn ScheduleChooser>>) -> ToyOutcome {
    let sim = Sim::new(SimConfig::scheduled().with_seed(seed).with_check());
    let kernel = Kernel::new(&sim, "toy");
    let host = kernel.host();
    if let Some(ch) = chooser {
        sim.set_chooser(ch);
    }
    let a = SharedSema::labeled(0, "A");
    let b = SharedSema::labeled(0, "B");
    let done = Arc::new(AtomicUsize::new(0));
    {
        let (a, done) = (a.clone(), Arc::clone(&done));
        sim.spawn(host, move |ctx| {
            a.v(ctx);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let (a, b, done) = (a.clone(), b.clone(), Arc::clone(&done));
        sim.spawn(host, move |ctx| {
            a.p(ctx);
            b.v(ctx);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let (b, done) = (b.clone(), Arc::clone(&done));
        sim.spawn(host, move |ctx| {
            b.p(ctx);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    let run = sim.run_until_idle();
    outcome(&sim, run, done.load(Ordering::SeqCst))
}

/// Runs the cross-host toy: a process on host 1 V's the semaphore a
/// process on host 0 is blocked on. Completes on every schedule, but the
/// checker must report exactly one `CrossHostSignal`.
pub fn run_crosshost(seed: u64, chooser: Option<Box<dyn ScheduleChooser>>) -> ToyOutcome {
    let sim = Sim::new(SimConfig::scheduled().with_seed(seed).with_check());
    let k0 = Kernel::new(&sim, "toy-a");
    let k1 = Kernel::new(&sim, "toy-b");
    if let Some(ch) = chooser {
        sim.set_chooser(ch);
    }
    let shared = SharedSema::labeled(0, "shared");
    let done = Arc::new(AtomicUsize::new(0));
    {
        let (s, done) = (shared.clone(), Arc::clone(&done));
        sim.spawn(k0.host(), move |ctx| {
            s.p(ctx);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    {
        let (s, done) = (shared.clone(), Arc::clone(&done));
        sim.spawn(k1.host(), move |ctx| {
            // Give the waiter time to block, so the V crosses hosts as a
            // wake rather than a count increment on every schedule.
            ctx.sleep(DL_SLEEP_NS);
            s.v(ctx);
            done.fetch_add(1, Ordering::SeqCst);
        });
    }
    let run = sim.run_until_idle();
    outcome(&sim, run, done.load(Ordering::SeqCst))
}

/// Runs the deadlock toy graph (built unchecked — the linter rejects it
/// via XK015) and returns the outcome; on every schedule both boot
/// processes end blocked and the scan reports the two-semaphore cycle.
pub fn run_deadlock_spec(seed: u64, chooser: Option<Box<dyn ScheduleChooser>>) -> ToyOutcome {
    let sim = Sim::new(SimConfig::scheduled().with_seed(seed).with_check());
    let kernel = Kernel::new(&sim, "dl");
    let mut reg = ProtocolRegistry::new();
    register_ctors(&mut reg);
    reg.build_unchecked(&sim, &kernel, DEADLOCK_TOY_GRAPH)
        .expect("deadlock toy graph builds");
    if let Some(ch) = chooser {
        sim.set_chooser(ch);
    }
    let run = sim.run_until_idle();
    outcome(&sim, run, 0)
}

/// The deadlock cycles in `out`, if any.
pub fn deadlock_cycles(out: &ToyOutcome) -> Vec<&Violation> {
    out.check
        .violations
        .iter()
        .filter(|v| v.kind == ViolationKind::DeadlockCycle)
        .collect()
}

/// Registers the deadlock-toy constructors and contracts (`dl_ab`,
/// `dl_ba`) into `reg`, so graph specs and the lint suite can name them.
pub fn register_ctors(reg: &mut ProtocolRegistry) {
    reg.add("dl_ab", |g: &GraphArgs<'_>| {
        Ok(Arc::new(DlAb {
            me: g.me,
            sem_a: SharedSema::labeled(1, "dl.sem_a"),
            sem_b: SharedSema::labeled(1, "dl.sem_b"),
        }) as ProtocolRef)
    });
    reg.add_contract(dl_ab_contract());
    reg.add("dl_ba", |g: &GraphArgs<'_>| {
        let below = g.kernel.proto(g.down(0)?)?;
        let ab = below
            .as_any()
            .downcast_ref::<DlAb>()
            .ok_or(XError::Unsupported("dl_ba must sit directly over dl_ab"))?;
        Ok(Arc::new(DlBa {
            me: g.me,
            sem_a: ab.sem_a.clone(),
            sem_b: ab.sem_b.clone(),
        }) as ProtocolRef)
    });
    reg.add_contract(dl_ba_contract());
}

/// Contract for `dl_ab`: declares lock order `dl.sem_a` before
/// `dl.sem_b`.
pub fn dl_ab_contract() -> ProtoContract {
    ProtoContract::new("dl_ab", AddrKind::Rpc)
        .blocks(&[BlockPoint::Sema])
        .locks(&["dl.sem_a", "dl.sem_b"])
}

/// Contract for `dl_ba`: the *opposite* order — merged with `dl_ab`'s,
/// the relation is cyclic and XK015 rejects any spec composing both.
pub fn dl_ba_contract() -> ProtoContract {
    ProtoContract::new("dl_ba", AddrKind::Rpc)
        .lower(&[AddrKind::Rpc])
        .blocks(&[BlockPoint::Sema])
        .locks(&["dl.sem_b", "dl.sem_a"])
}

/// Toy protocol whose boot process acquires `dl.sem_a` then `dl.sem_b`.
/// Owns the semaphore pair; `dl_ba` shares it by sitting above.
pub struct DlAb {
    me: ProtoId,
    sem_a: SharedSema,
    sem_b: SharedSema,
}

/// Toy protocol whose boot process acquires the pair in the *opposite*
/// order — the classic AB/BA deadlock.
pub struct DlBa {
    me: ProtoId,
    sem_a: SharedSema,
    sem_b: SharedSema,
}

fn deadlock_process(first: SharedSema, second: SharedSema) -> impl FnOnce(&Ctx) + Send + 'static {
    move |ctx: &Ctx| {
        first.p(ctx);
        // Hold the first semaphore across a sleep so the peer process is
        // guaranteed to hold its own first semaphore too.
        ctx.sleep(DL_SLEEP_NS);
        second.p(ctx);
        // Unreachable when the peer is composed: both processes block on
        // their second acquire. Kept for the single-protocol case.
        second.v(ctx);
        first.v(ctx);
    }
}

impl Protocol for DlAb {
    fn name(&self) -> &'static str {
        "dl_ab"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn open(&self, _ctx: &Ctx, _upper: ProtoId, _parts: &ParticipantSet) -> XResult<SessionRef> {
        Err(XError::Unsupported("deadlock toy has no sessions"))
    }

    fn open_enable(&self, _ctx: &Ctx, _upper: ProtoId, _parts: &ParticipantSet) -> XResult<()> {
        Err(XError::Unsupported("deadlock toy has no sessions"))
    }

    fn demux(&self, _ctx: &Ctx, _lls: &SessionRef, _msg: Message) -> XResult<()> {
        Err(XError::Unsupported("deadlock toy has no traffic"))
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let f = deadlock_process(self.sem_a.clone(), self.sem_b.clone());
        ctx.spawn_on(ctx.host(), f);
        Ok(())
    }

    fn contract(&self) -> ProtoContract {
        dl_ab_contract()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Protocol for DlBa {
    fn name(&self) -> &'static str {
        "dl_ba"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn open(&self, _ctx: &Ctx, _upper: ProtoId, _parts: &ParticipantSet) -> XResult<SessionRef> {
        Err(XError::Unsupported("deadlock toy has no sessions"))
    }

    fn open_enable(&self, _ctx: &Ctx, _upper: ProtoId, _parts: &ParticipantSet) -> XResult<()> {
        Err(XError::Unsupported("deadlock toy has no sessions"))
    }

    fn demux(&self, _ctx: &Ctx, _lls: &SessionRef, _msg: Message) -> XResult<()> {
        Err(XError::Unsupported("deadlock toy has no traffic"))
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let f = deadlock_process(self.sem_b.clone(), self.sem_a.clone());
        ctx.spawn_on(ctx.host(), f);
        Ok(())
    }

    fn contract(&self) -> ProtoContract {
        dl_ba_contract()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
