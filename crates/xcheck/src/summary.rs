//! The machine-readable exploration summary (`xcheck-v1`).
//!
//! Every xcheck run — exhaustive or random-walk — ends by emitting one
//! JSON object describing what was covered, so CI and downstream tools
//! can gate on it without parsing human-oriented output. The schema is
//! deliberately flat and hand-rolled (the workspace carries no JSON
//! dependency): string values contain no characters needing escapes.

/// The `schema` tag stamped on every summary object.
pub const SCHEMA: &str = "xcheck-v1";

/// One exploration's coverage and verdict, serializable as `xcheck-v1`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Summary {
    /// Scenario name (`handshake`, `deadlock`, `crosshost`, or a chaos
    /// stack label).
    pub scenario: String,
    /// `exhaustive` or `walk`.
    pub mode: String,
    /// Schedules visited.
    pub schedules: usize,
    /// `true` when the schedule space was fully enumerated.
    pub complete: bool,
    /// Distinct `sched_hash` fingerprints among visited schedules.
    pub distinct_hashes: usize,
    /// Checker violations summed over all schedules.
    pub violations: usize,
    /// Chaos invariant failures summed over all schedules.
    pub invariant_failures: usize,
}

impl Summary {
    /// Renders the summary as one `xcheck-v1` JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{}\",\"scenario\":\"{}\",\"mode\":\"{}\",\
             \"schedules\":{},\"complete\":{},\"distinct_hashes\":{},\
             \"violations\":{},\"invariant_failures\":{}}}",
            SCHEMA,
            self.scenario,
            self.mode,
            self.schedules,
            self.complete,
            self.distinct_hashes,
            self.violations,
            self.invariant_failures,
        )
    }
}

/// Keys every `xcheck-v1` summary must carry, in emission order.
const REQUIRED_KEYS: [&str; 8] = [
    "schema",
    "scenario",
    "mode",
    "schedules",
    "complete",
    "distinct_hashes",
    "violations",
    "invariant_failures",
];

/// Validates that `json` is a structurally sound `xcheck-v1` summary:
/// one flat object, balanced quotes and braces, the exact schema tag,
/// and every required key present. Returns the offending detail on
/// failure.
pub fn validate_summary(json: &str) -> Result<(), String> {
    let s = json.trim();
    if !s.starts_with('{') || !s.ends_with('}') {
        return Err("summary is not a JSON object".into());
    }
    if s.matches('{').count() != 1 || s.matches('}').count() != 1 {
        return Err("summary must be one flat object".into());
    }
    if !s.matches('"').count().is_multiple_of(2) {
        return Err("unbalanced quotes".into());
    }
    if !s.contains(&format!("\"schema\":\"{SCHEMA}\"")) {
        return Err(format!("missing schema tag {SCHEMA:?}"));
    }
    for key in REQUIRED_KEYS {
        if !s.contains(&format!("\"{key}\":")) {
            return Err(format!("missing key {key:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        Summary {
            scenario: "handshake".into(),
            mode: "exhaustive".into(),
            schedules: 6,
            complete: true,
            distinct_hashes: 6,
            violations: 0,
            invariant_failures: 0,
        }
    }

    #[test]
    fn emitted_summaries_validate() {
        let json = sample().to_json();
        assert!(json.contains("\"schema\":\"xcheck-v1\""), "{json}");
        validate_summary(&json).unwrap();
    }

    #[test]
    fn validator_rejects_malformed_summaries() {
        assert!(validate_summary("not json").is_err());
        assert!(validate_summary("{\"schema\":\"xcheck-v0\"}").is_err());
        let missing = sample().to_json().replace("\"complete\":true,", "");
        assert!(validate_summary(&missing).is_err());
        let nested = sample().to_json().replace("0}", "0,\"x\":{}}");
        assert!(validate_summary(&nested).is_err());
    }
}
