//! The schedule-space drivers: exhaustive DFS over forced-choice
//! decisions, and seeded random walks for spaces too large to enumerate.
//!
//! A [`xkernel::sim::ScheduleChooser`] turns every same-time event tie
//! into a decision point. [`ReplayChooser`] replays a fixed decision
//! prefix and then takes branch 0, recording the branch factor it saw at
//! every point; [`explore`] drives it depth-first — after each run it
//! rewinds to the deepest decision with an untaken branch and re-runs
//! with that branch forced. Because the simulator is deterministic given
//! its seed and the chooser's decisions, replaying a prefix reproduces
//! the exact run that recorded it, which is also how xcheck repro strings
//! replay: same seed, same decisions, same `sched_hash`.

use std::sync::Arc;

use parking_lot::Mutex;
use xkernel::sim::ScheduleChooser;

/// What one run's chooser saw and did: the branch taken and the branch
/// factor (number of tied events) at each forced-choice point, in order.
#[derive(Default, Clone, Debug)]
pub struct Recording {
    /// Branch taken at each decision point.
    pub choices: Vec<usize>,
    /// Number of alternatives at each decision point.
    pub branches: Vec<usize>,
}

/// A chooser that replays `prefix` and then always takes branch 0,
/// recording every decision into a shared [`Recording`].
pub struct ReplayChooser {
    prefix: Vec<usize>,
    depth: usize,
    rec: Arc<Mutex<Recording>>,
}

impl ReplayChooser {
    /// A chooser replaying `prefix`, recording into `rec`.
    pub fn new(prefix: Vec<usize>, rec: Arc<Mutex<Recording>>) -> ReplayChooser {
        ReplayChooser {
            prefix,
            depth: 0,
            rec,
        }
    }
}

impl ScheduleChooser for ReplayChooser {
    fn choose(&mut self, n: usize) -> usize {
        let pick = self.prefix.get(self.depth).copied().unwrap_or(0).min(n - 1);
        self.depth += 1;
        let mut r = self.rec.lock();
        r.choices.push(pick);
        r.branches.push(n);
        pick
    }
}

/// The result of [`explore`]: one outcome per schedule visited, and
/// whether the walk covered the whole space.
pub struct Exploration<T> {
    /// One entry per schedule, in DFS order (branch 0 first).
    pub outcomes: Vec<T>,
    /// `true` when every schedule was visited; `false` when `limit`
    /// truncated the search.
    pub complete: bool,
}

impl<T> Exploration<T> {
    /// Number of schedules visited.
    pub fn schedules(&self) -> usize {
        self.outcomes.len()
    }
}

/// Exhaustively enumerates schedules depth-first, calling `run` once per
/// schedule with a fresh [`ReplayChooser`] (the caller installs it on a
/// fresh simulator and runs the scenario to completion). Stops after
/// `limit` schedules, marking the exploration incomplete if decisions
/// remain.
pub fn explore<T>(limit: usize, mut run: impl FnMut(Box<ReplayChooser>) -> T) -> Exploration<T> {
    let mut prefix: Vec<usize> = Vec::new();
    let mut outcomes = Vec::new();
    loop {
        let rec = Arc::new(Mutex::new(Recording::default()));
        let chooser = Box::new(ReplayChooser::new(prefix.clone(), Arc::clone(&rec)));
        outcomes.push(run(chooser));
        let r = rec.lock();
        // Deepest decision with an untaken branch; bump it and rerun.
        let next = (0..r.choices.len())
            .rev()
            .find(|&i| r.choices[i] + 1 < r.branches[i]);
        match next {
            None => {
                return Exploration {
                    outcomes,
                    complete: true,
                }
            }
            Some(i) => {
                prefix = r.choices[..=i].to_vec();
                prefix[i] += 1;
            }
        }
        drop(r);
        if outcomes.len() >= limit {
            return Exploration {
                outcomes,
                complete: false,
            };
        }
    }
}

/// A chooser making seeded pseudo-random decisions (splitmix64): one
/// random walk through the schedule space, for scenarios too large to
/// enumerate. The same seed walks the same schedule.
pub struct WalkChooser {
    state: u64,
}

impl WalkChooser {
    /// A walk chooser seeded with `seed`.
    pub fn new(seed: u64) -> WalkChooser {
        WalkChooser { state: seed | 1 }
    }
}

impl ScheduleChooser for WalkChooser {
    fn choose(&mut self, n: usize) -> usize {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic decision tree: each "run" makes `depth` binary choices
    /// and returns them; exploration must visit all 2^depth leaves, each
    /// exactly once.
    #[test]
    fn dfs_visits_every_leaf_once() {
        let depth = 4;
        let ex = explore(1 << 12, |mut ch| {
            let mut leaf = Vec::new();
            for _ in 0..depth {
                leaf.push(ch.choose(2));
            }
            leaf
        });
        assert!(ex.complete);
        assert_eq!(ex.schedules(), 1 << depth);
        let mut seen = std::collections::HashSet::new();
        for leaf in &ex.outcomes {
            assert!(seen.insert(leaf.clone()), "leaf visited twice: {leaf:?}");
        }
    }

    #[test]
    fn limit_truncates_and_reports_incomplete() {
        let ex = explore(3, |mut ch| (0..5).map(|_| ch.choose(2)).collect::<Vec<_>>());
        assert!(!ex.complete);
        assert_eq!(ex.schedules(), 3);
    }

    #[test]
    fn mixed_branch_factors_enumerate_the_product() {
        // 3 * 2 * 2 = 12 leaves, like a 3-process spawn tie followed by
        // two binary ties.
        let ex = explore(1 << 12, |mut ch| (ch.choose(3), ch.choose(2), ch.choose(2)));
        assert!(ex.complete);
        assert_eq!(ex.schedules(), 12);
    }

    #[test]
    fn walks_are_seed_deterministic() {
        let walk = |seed: u64| {
            let mut ch = WalkChooser::new(seed);
            (0..32).map(|i| ch.choose(2 + (i % 3))).collect::<Vec<_>>()
        };
        assert_eq!(walk(7), walk(7));
        assert_ne!(walk(7), walk(8));
    }
}
