//! xcheck — bounded schedule exploration for the x-kernel simulator.
//!
//! The static pass (`xkernel::lint`, rules XK011–XK016) checks what a
//! protocol *declares* about its blocking behaviour; the dynamic checker
//! (`xkernel::check`) watches one schedule execute. This crate closes
//! the loop by asking: *which* schedules? Small scenarios are enumerated
//! exhaustively — every forced-choice scheduler decision (a same-time
//! event tie) is a branch point, and [`explore::explore`] drives a
//! depth-first walk over the whole tree, proving the chaos invariants
//! and the absence of checker violations on **every** interleaving.
//! Larger scenarios (the full RPC stacks under chaos profiles) are
//! random-walked with seeded [`explore::WalkChooser`]s instead.
//!
//! Everything a run reports is replayable: violations carry
//! `xcheck://seed=…/sched=…/ev=…` repro strings, and the `sched_hash`
//! fingerprint lets a rerun assert it walked the identical schedule.

pub mod explore;
pub mod summary;
pub mod toys;

use chaos::Scenario;
use explore::WalkChooser;

/// Outcome of one random-walk chaos run under the checker.
pub struct ChaosWalkOutcome {
    /// The walk's seed (feed back to `WalkChooser::new` to replay).
    pub walk_seed: u64,
    /// Schedule fingerprint of the walk.
    pub sched_hash: u64,
    /// Checker violations found on this schedule.
    pub violations: usize,
    /// Repro strings, one per violation.
    pub repros: Vec<String>,
    /// Chaos invariant failures (empty on a healthy stack).
    pub invariant_failures: Vec<String>,
}

/// Runs `walks` seeded random walks of `scenario` with the dynamic
/// checker enabled, perturbing the schedule with a fresh
/// [`WalkChooser`] per walk. Returns one outcome per walk; callers
/// assert that violations and invariant failures are empty.
pub fn walk_chaos(scenario: &Scenario, walks: usize, seed: u64) -> Vec<ChaosWalkOutcome> {
    (0..walks)
        .map(|w| {
            let walk_seed = seed
                .wrapping_add(w as u64)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let v = scenario.run_verified_with(Box::new(WalkChooser::new(walk_seed)));
            ChaosWalkOutcome {
                walk_seed,
                sched_hash: v.report.run.sched_hash,
                violations: v.check.violations.len(),
                repros: v.repros,
                invariant_failures: v.invariant_failures,
            }
        })
        .collect()
}
