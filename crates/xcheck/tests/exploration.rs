//! Acceptance tests for the bounded schedule explorer: exhaustive
//! enumeration of the handshake toy (every interleaving visited, chaos
//! invariants proven on all of them), the deliberately deadlocking toy
//! (exact cycle, deterministic replayable repro), the cross-host signal
//! toy, and checker-enabled random walks of a real RPC stack.

use std::collections::HashSet;

use chaos::{Profile, Scenario, StackKind};
use xcheck::explore::{explore, WalkChooser};
use xcheck::summary::{validate_summary, Summary};
use xcheck::toys;
use xkernel::check::{parse_repro, ViolationKind};

const SEED: u64 = 42;

/// The acceptance scenario: 3 processes / 2 semaphores, exhaustively
/// explored. Every forced-choice interleaving is visited (3 spawn ties,
/// then 2: exactly 6 schedules), every schedule completes with all three
/// processes done, no process blocked, and zero checker violations.
#[test]
fn handshake_explores_every_interleaving_and_all_pass() {
    let ex = explore(10_000, |ch| toys::run_handshake(SEED, Some(ch)));
    assert!(ex.complete, "schedule space must be fully enumerated");
    assert_eq!(ex.schedules(), 6, "3-way tie then 2-way tie = 6 schedules");
    // The exact fingerprints, in DFS enumeration order. These are pinned:
    // the engine's continuation representation (OS threads, coroutines,
    // machines) must never leak into the schedule identity, so any engine
    // rewrite has to reproduce these six values bit for bit.
    let expected: [u64; 6] = [
        0x8d5f_72d1_f9d0_4017,
        0x2814_416b_65e6_afa2,
        0x2bfb_03c6_c18e_0f94,
        0xc683_8010_ac87_ae4c,
        0x33a0_d12f_0e88_380a,
        0xcd9d_eb53_ad42_1a4a,
    ];
    let got: Vec<u64> = ex.outcomes.iter().map(|o| o.sched_hash).collect();
    assert_eq!(
        got, expected,
        "handshake schedule fingerprints moved — the engine changed the \
         schedule identity"
    );
    let mut hashes = HashSet::new();
    for out in &ex.outcomes {
        assert_eq!(out.blocked, 0, "no schedule may leave a process blocked");
        assert_eq!(out.done, 3, "all three processes complete");
        assert!(
            out.check.violations.is_empty(),
            "clean toy, violations on some schedule: {:?}",
            out.check.violations
        );
        assert!(out.check.hb_edges > 0, "V->P joins must be observed");
        hashes.insert(out.sched_hash);
    }
    assert_eq!(
        hashes.len(),
        6,
        "each interleaving has a distinct schedule fingerprint"
    );

    // The machine-readable summary for this exploration validates.
    let summary = Summary {
        scenario: "handshake".into(),
        mode: "exhaustive".into(),
        schedules: ex.schedules(),
        complete: ex.complete,
        distinct_hashes: hashes.len(),
        violations: 0,
        invariant_failures: 0,
    };
    validate_summary(&summary.to_json()).unwrap();
}

/// Regression: the AB/BA toy deadlocks, the checker names the exact
/// wait-for cycle, and the repro string is deterministic and parseable.
#[test]
fn deadlock_toy_reports_exact_cycle_with_deterministic_repro() {
    let out = toys::run_deadlock_spec(SEED, None);
    assert_eq!(out.blocked, 2, "both boot processes end blocked");
    let cycles = toys::deadlock_cycles(&out);
    assert_eq!(cycles.len(), 1, "one cycle, deduplicated: {:?}", cycles);
    let v = cycles[0];
    assert_eq!(
        v.cycle,
        vec!["lp0", "dl.sem_b", "lp1", "dl.sem_a", "lp0"],
        "the exact two-semaphore cycle, normalized to start at lp0"
    );
    assert!(
        v.detail.contains("dl.sem_a") && v.detail.contains("dl.sem_b"),
        "{}",
        v.detail
    );

    // The repro string replays: same seed, same schedule fingerprint.
    let repro = &out.repros[out
        .check
        .violations
        .iter()
        .position(|w| w.kind == ViolationKind::DeadlockCycle)
        .unwrap()];
    let parsed = parse_repro(repro).expect("repro string parses");
    assert_eq!(parsed.seed, SEED);
    assert_eq!(parsed.sched_hash, out.sched_hash);

    let again = toys::run_deadlock_spec(SEED, None);
    assert_eq!(
        again.sched_hash, out.sched_hash,
        "schedule is deterministic"
    );
    assert_eq!(again.repros, out.repros, "repro strings are deterministic");
}

/// The deadlock is schedule-independent: every interleaving of the toy
/// reaches the same two-semaphore cycle.
#[test]
fn deadlock_fires_on_every_explored_schedule() {
    let ex = explore(10_000, |ch| toys::run_deadlock_spec(SEED, Some(ch)));
    assert!(ex.complete);
    assert!(ex.schedules() >= 2, "at least the two spawn orders");
    for out in &ex.outcomes {
        assert_eq!(out.blocked, 2);
        let cycles = toys::deadlock_cycles(out);
        assert_eq!(cycles.len(), 1, "{:?}", out.check.violations);
        assert_eq!(cycles[0].cycle.len(), 5, "{:?}", cycles[0].cycle);
    }
}

/// A V on one host waking a waiter on another is flagged on every
/// schedule, and the run still completes.
#[test]
fn crosshost_signal_is_flagged_on_every_schedule() {
    let ex = explore(10_000, |ch| toys::run_crosshost(SEED, Some(ch)));
    assert!(ex.complete);
    for out in &ex.outcomes {
        assert_eq!(out.blocked, 0);
        assert_eq!(out.done, 2);
        let kinds: Vec<_> = out.check.violations.iter().map(|v| v.kind).collect();
        assert_eq!(
            kinds,
            vec![ViolationKind::CrossHostSignal],
            "{:?}",
            out.check.violations
        );
        let parsed = parse_repro(&out.repros[0]).expect("repro parses");
        assert_eq!(parsed.sched_hash, out.sched_hash);
    }
}

/// The checked-in bad spec is the same graph the dynamic runner executes,
/// so the static (XK015) and dynamic (wait-for cycle) verdicts are about
/// one artifact.
#[test]
fn checked_in_deadlock_spec_matches_the_toy_graph() {
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../specs/bad/deadlock-toy.xk");
    let spec = std::fs::read_to_string(&path).unwrap();
    let body: String = spec
        .lines()
        .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
        .map(|l| format!("{l}\n"))
        .collect();
    assert_eq!(body, toys::DEADLOCK_TOY_GRAPH);
}

/// Random walks of a real RPC stack under a lossy profile: the schedule
/// perturbation changes the fingerprint, but every walk keeps the chaos
/// invariants and reports no concurrency violations.
#[test]
fn random_walks_of_an_rpc_stack_stay_clean() {
    let sc = Scenario {
        stack: StackKind::Paper(xrpc::stacks::L_RPC_VIP),
        profile: Profile::Lossy,
        seed: 7,
        calls: 3,
        population: 1,
    };
    let walks = xcheck::walk_chaos(&sc, 4, 0xfeed);
    assert_eq!(walks.len(), 4);
    for w in &walks {
        assert!(
            w.invariant_failures.is_empty(),
            "walk {:#x} broke invariants: {:?}",
            w.walk_seed,
            w.invariant_failures
        );
        assert_eq!(w.violations, 0, "walk {:#x}: {:?}", w.walk_seed, w.repros);
    }
    // Seeded walks are reproducible.
    let again = xcheck::walk_chaos(&sc, 4, 0xfeed);
    let h1: Vec<_> = walks.iter().map(|w| w.sched_hash).collect();
    let h2: Vec<_> = again.iter().map(|w| w.sched_hash).collect();
    assert_eq!(h1, h2);
}

/// WalkChooser decisions depend on the seed (sanity for the walk driver).
#[test]
fn distinct_walk_seeds_usually_diverge() {
    use xkernel::sim::ScheduleChooser;
    let decisions = |seed: u64| {
        let mut ch = WalkChooser::new(seed);
        (0..64).map(|_| ch.choose(3)).collect::<Vec<_>>()
    };
    assert_ne!(decisions(1), decisions(2));
}
