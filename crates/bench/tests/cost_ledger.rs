//! Golden guarantees for the xtrace cost ledger: the per-layer breakdown
//! must *decompose* the headline Table I/II latencies, never perturb them.
//!
//! Two properties per stack:
//!
//! 1. **Conservation** — the client host's ledger buckets sum to exactly
//!    the measured window (every charged nanosecond is attributed to some
//!    `(layer, class)` bucket, and nothing else is).
//! 2. **Non-interference** — the traced run's per-call latency is
//!    bit-identical to the untraced [`xbench::rpc_latency`] the golden
//!    tables pin, because tracing observes charges but never adds any.

use xbench::{rpc_latency, rpc_latency_traced, LATENCY_ITERS};
use xkernel::prelude::OpClass;
use xrpc::stacks::ALL_RPC_STACKS;

#[test]
fn per_layer_breakdown_sums_to_headline_latency_for_every_stack() {
    for stack in &ALL_RPC_STACKS {
        let tr = rpc_latency_traced(stack, LATENCY_ITERS);
        assert!(
            !tr.breakdown.is_empty(),
            "{}: traced run produced an empty ledger",
            stack.name
        );

        // 1. Conservation: client buckets sum to the window, exactly.
        let client_sum = tr.breakdown.host_total(tr.client);
        assert_eq!(
            client_sum, tr.window_ns,
            "{}: client ledger ({client_sum} ns) must sum to the measured \
             window ({} ns) to the nanosecond",
            stack.name, tr.window_ns
        );

        // 2. Non-interference: per-call latency matches the untraced
        //    golden measurement bit for bit.
        let untraced = rpc_latency(stack);
        assert_eq!(
            tr.latency_ns, untraced,
            "{}: tracing changed the measured latency",
            stack.name
        );

        // The folded view is just another projection of the same ledger:
        // same client total.
        let folded_client: u64 = tr
            .folded
            .iter()
            .filter(|l| l.host == tr.client)
            .map(|l| l.ns)
            .sum();
        assert_eq!(
            folded_client, tr.window_ns,
            "{}: folded stacks must sum to the window too",
            stack.name
        );

        // Sanity on the shape: a round trip spends time in layer calls and
        // in the wire-idle class on the client.
        assert!(
            tr.breakdown.class_total(OpClass::LayerCall) > 0,
            "{}: no layer-call cost attributed",
            stack.name
        );
        assert!(
            tr.breakdown
                .entries
                .iter()
                .any(|e| e.host == tr.client && e.class == OpClass::Idle),
            "{}: client must have idle (wire-wait) time",
            stack.name
        );

        // The server did real attributed work in the window as well.
        assert!(
            tr.breakdown.host_total(tr.server) > 0,
            "{}: no server cost attributed",
            stack.name
        );
    }
}
