//! Snapshot smoke: the fast end-to-end checks CI runs on the snapshot /
//! journal / replay machinery. The exhaustive matrix lives in the chaos
//! crate's `snapshot_replay` suite; this smoke pins the two user-visible
//! contracts on one representative stack each:
//!
//! * saving mid-soak, restoring, and replaying the tail yields a
//!   `ChaosReport` bit-identical to the uninterrupted run, and
//! * a journaled run's decision stream replays to the identical report
//!   and schedule fingerprint after a wire-encoding round trip.

use chaos::{Profile, Scenario, StackKind};
use xkernel::journal::Journal;

#[test]
fn midpoint_snapshot_report_is_bit_identical() {
    for (stack, profile) in [
        (StackKind::SunRpcUdp, Profile::Lossy),
        (
            StackKind::Paper(xrpc::stacks::M_RPC_ETH),
            Profile::FaultFree,
        ),
    ] {
        let sc = Scenario {
            stack,
            profile,
            seed: 21,
            calls: 6,
            population: 1,
        };
        let out = sc.run_snapshotted(3);
        out.assert_identical();
        assert_eq!(
            out.first.run.sched_hash, out.replayed.run.sched_hash,
            "restored run re-derives the schedule fingerprint"
        );
        sc.check(&out.first);
    }
}

#[test]
fn journal_survives_the_wire_and_replays() {
    let sc = Scenario {
        stack: StackKind::Paper(xrpc::stacks::L_RPC_VIP),
        profile: Profile::Bursty,
        seed: 13,
        calls: 6,
        population: 2,
    };
    let (report, journal) = sc.run_journaled();
    let decoded = Journal::decode(&journal.encode()).expect("journal decodes");
    assert_eq!(journal, decoded, "wire round trip is lossless");
    let (replayed, _) = sc.run_replayed(&decoded);
    assert_eq!(report, replayed, "decoded journal replays the run");
}
