//! Golden pins for the paper-table virtual-time outputs.
//!
//! The wall-clock fast path (parallel scenario engine, zero-copy checksum
//! folding, scheduler direct handoff) must not move virtual time by a
//! single nanosecond: Tables I and II are the paper reproduction, and they
//! are deterministic, so we pin them bit for bit. If a change legitimately
//! alters the cost model, re-capture these with the table binaries and
//! update the constants — anything else failing here is a regression.

use xbench::{pinger_latency, rpc_latency, rpc_rtt_for_size, THROUGHPUT_ITERS};
use xrpc::stacks::{StackDef, L_RPC_VIP, M_RPC_ETH, M_RPC_IP, M_RPC_VIP};

/// (stack, null-RPC latency ns, 1k-byte RTT ns, 16k-byte RTT ns).
const GOLDEN: [(&StackDef, u64, u64, u64); 4] = [
    (&M_RPC_ETH, 1_659_800, 2_467_800, 18_337_000),
    (&M_RPC_IP, 1_988_600, 2_807_800, 18_853_000),
    (&M_RPC_VIP, 1_695_800, 2_503_800, 18_373_000),
    (&L_RPC_VIP, 1_884_440, 2_699_640, 18_455_160),
];

#[test]
fn table1_and_2_latency_bit_identical() {
    for (stack, lat, _, _) in GOLDEN {
        assert_eq!(rpc_latency(stack), lat, "latency moved for {}", stack.name);
    }
}

#[test]
fn table1_and_2_throughput_bit_identical() {
    for (stack, _, t1k, t16k) in GOLDEN {
        assert_eq!(
            rpc_rtt_for_size(stack, 1024, THROUGHPUT_ITERS),
            t1k,
            "1k RTT moved for {}",
            stack.name
        );
        assert_eq!(
            rpc_rtt_for_size(stack, 16 * 1024, THROUGHPUT_ITERS),
            t16k,
            "16k RTT moved for {}",
            stack.name
        );
    }
}

#[test]
fn table3_pinger_row_bit_identical() {
    assert_eq!(
        pinger_latency("vip -> ip eth arp\nfragment -> vip\n", "fragment"),
        1_376_097,
        "FRAGMENT-VIP pinger latency moved"
    );
}
