//! # xbench — the experiment harness
//!
//! Regenerates every table and figure in the paper's evaluation section.
//! Each `src/bin/*` binary prints one table, with the paper's values beside
//! ours; `benches/paper.rs` measures the same configurations as real CPU
//! time (criterion, inline-synchronous network).
//!
//! Methodology mirrors §4: the latency test is "the round trip delay for
//! invoking a null procedure with null request and reply messages"; the
//! throughput test uses "a series of large request messages (ranging in
//! size from 1k-bytes to 16k-bytes) and a null reply", fragments ≤ 1500
//! bytes, kernel-to-kernel, two hosts on an isolated 10 Mbps Ethernet.
//! Measurements run in virtual time, so they are exactly reproducible; the
//! per-primitive Sun 3/75 cost calibration lives in
//! [`xkernel::cost::CostModel::sun3_75`] and is shared by every experiment.

#![warn(missing_docs)]

use std::sync::Arc;

use parking_lot::Mutex;

use inet::testbed::{base_registry, two_hosts, TwoHosts};
use inet::with_concrete;
use xkernel::graph::ProtocolRegistry;
use xkernel::prelude::*;
use xkernel::sim::{Mode, Sim, SimConfig};
use xrpc::pinger::Pinger;
use xrpc::procs::{NULL_PROC, SINK_PROC};
use xrpc::stacks::StackDef;

/// Iterations for virtual-time latency runs. The simulation is
/// deterministic, so a few hundred suffice where the paper needed 10,000.
pub const LATENCY_ITERS: usize = 400;
/// Warm-up calls before measuring (ARP, session creation, caches).
pub const WARMUP_ITERS: usize = 8;
/// Iterations per size for throughput runs.
pub const THROUGHPUT_ITERS: usize = 60;

/// The registry with every constructor in the workspace.
pub fn registry() -> ProtocolRegistry {
    let mut reg = base_registry();
    xrpc::register_ctors(&mut reg);
    xkernel::shim::register_ctors(&mut reg);
    sunrpc::register_ctors(&mut reg);
    psync::register_ctors(&mut reg);
    reg
}

/// Builds the standard two-host rig for a stack in the given mode, with the
/// standard procedures registered on the server.
pub fn rpc_rig(stack: &StackDef, mode: Mode) -> TwoHosts {
    let cfg = match mode {
        Mode::Inline => SimConfig::inline_mode(),
        Mode::Scheduled => SimConfig::scheduled(),
    };
    let tb = two_hosts(cfg, &registry(), stack.graph).expect("testbed builds");
    xrpc::procs::register_standard(&tb.server, stack.entry).expect("procedures register");
    tb
}

/// Round-trip latency (virtual ns) of a null RPC on `stack`.
pub fn rpc_latency(stack: &StackDef) -> u64 {
    let tb = rpc_rig(stack, Mode::Scheduled);
    let server_ip = tb.server_ip;
    let entry = stack.entry;
    let out = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        for _ in 0..WARMUP_ITERS {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).unwrap();
        }
        let t0 = ctx.now();
        for _ in 0..LATENCY_ITERS {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).unwrap();
        }
        *o2.lock() = (ctx.now() - t0) / LATENCY_ITERS as u64;
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0, "latency run must drain");
    let v = *out.lock();
    v
}

/// Results of one traced latency run: the headline window plus the
/// per-layer cost ledger scoped to exactly that window.
#[derive(Clone, Debug)]
pub struct TracedLatency {
    /// Average null-RPC round trip, ns (same definition as
    /// [`rpc_latency`]).
    pub latency_ns: u64,
    /// The whole measured window (`iters` calls), ns.
    pub window_ns: u64,
    /// Iterations measured.
    pub iters: usize,
    /// Client host (the one whose clock defines the window).
    pub client: HostId,
    /// Server host.
    pub server: HostId,
    /// Per-layer cost ledger for the window. By the conservation
    /// invariant, `breakdown.host_total(client) == window_ns` exactly.
    pub breakdown: CostBreakdown,
    /// Flamegraph-compatible folded stacks for the same window.
    pub folded: Vec<FoldedLine>,
}

/// Runs the null-RPC latency experiment with structured tracing enabled
/// and returns the per-layer decomposition of the measured window.
///
/// Tracing observes charges but never adds any, so `window_ns / iters`
/// is bit-identical to [`rpc_latency`] — the goldens pin both.
pub fn rpc_latency_traced(stack: &StackDef, iters: usize) -> TracedLatency {
    let tb = two_hosts(
        SimConfig::scheduled().with_trace(),
        &registry(),
        stack.graph,
    )
    .expect("testbed builds");
    xrpc::procs::register_standard(&tb.server, stack.entry).expect("procedures register");
    let server_ip = tb.server_ip;
    let entry = stack.entry;
    let client = tb.client.host();
    let server = tb.server.host();
    let sim2 = tb.sim.clone();
    type Captured = (u64, CostBreakdown, Vec<FoldedLine>);
    let out: Arc<Mutex<Option<Captured>>> = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    tb.sim.spawn(client, move |ctx| {
        let k = ctx.kernel();
        for _ in 0..WARMUP_ITERS {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).unwrap();
        }
        // Scope the ledger to the measured window: everything before this
        // point (boot, ARP, warmup) is discarded.
        ctx.trace_clear();
        let t0 = ctx.now();
        for _ in 0..iters {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).unwrap();
        }
        let window = ctx.now() - t0;
        // Capture the ledger *here*, before process teardown and the final
        // scheduler drain can attribute anything past the window's end.
        *o2.lock() = Some((window, ctx.cost_breakdown(), sim2.folded()));
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0, "traced latency run must drain");
    let (window_ns, breakdown, folded) = out.lock().take().expect("client captured the window");
    TracedLatency {
        latency_ns: window_ns / iters as u64,
        window_ns,
        iters,
        client,
        server,
        breakdown,
        folded,
    }
}

/// One throughput measurement: round trips of `size`-byte requests with
/// null replies. Returns average ns per call.
pub fn rpc_rtt_for_size(stack: &StackDef, size: usize, iters: usize) -> u64 {
    let tb = rpc_rig(stack, Mode::Scheduled);
    let server_ip = tb.server_ip;
    let entry = stack.entry;
    let out = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        let payload: Vec<u8> = vec![0xA5; size];
        for _ in 0..WARMUP_ITERS {
            xrpc::call(ctx, &k, entry, server_ip, SINK_PROC, payload.clone()).unwrap();
        }
        let t0 = ctx.now();
        for _ in 0..iters {
            xrpc::call(ctx, &k, entry, server_ip, SINK_PROC, payload.clone()).unwrap();
        }
        *o2.lock() = (ctx.now() - t0) / iters as u64;
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0, "throughput run must drain");
    let v = *out.lock();
    v
}

/// Results of the full §4 measurement battery for one configuration.
#[derive(Clone, Copy, Debug)]
pub struct StackResult {
    /// Null-RPC round trip, ns.
    pub latency_ns: u64,
    /// Throughput at 16 k-byte messages, kbytes/sec.
    pub throughput_kbs: f64,
    /// Incremental cost per additional kbyte, msec (slope of the 1k..16k
    /// sweep).
    pub incr_ms_per_k: f64,
}

/// Runs latency + the 1k..16k throughput sweep for `stack`.
pub fn measure_stack(stack: &StackDef) -> StackResult {
    let latency_ns = rpc_latency(stack);
    let t1k = rpc_rtt_for_size(stack, 1024, THROUGHPUT_ITERS);
    let t16k = rpc_rtt_for_size(stack, 16 * 1024, THROUGHPUT_ITERS);
    let throughput_kbs = 16.0 * 1024.0 / (t16k as f64 / 1e9) / 1024.0;
    let incr_ms_per_k = (t16k - t1k) as f64 / 15.0 / 1e6;
    StackResult {
        latency_ns,
        throughput_kbs,
        incr_ms_per_k,
    }
}

/// Round-trip latency (virtual ns) through a partial stack measured with
/// the PINGER protocol (Table III rows without a full RPC on top).
pub fn pinger_latency(graph: &str, lower: &str) -> u64 {
    let sim = Sim::new(SimConfig::scheduled());
    let net = simnet::SimNet::new(&sim);
    let lan = net.add_lan(simnet::LanConfig::default());
    let reg = registry();
    let mut kernels = Vec::new();
    for (i, ip) in ["10.0.0.1", "10.0.0.2"].iter().enumerate() {
        let k = Kernel::new(&sim, &format!("h{i}"));
        net.attach(&k, lan, "nic0", EthAddr::from_index(i as u16 + 1))
            .expect("attach");
        let spec = format!(
            "{}{}pinger echo={} -> {lower}\n",
            inet::standard_graph("nic0", ip),
            graph,
            i
        );
        reg.build(&sim, &k, &spec).expect("graph builds");
        kernels.push(k);
    }
    let server_ip = IpAddr::new(10, 0, 0, 2);
    let out = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    let client = Arc::clone(&kernels[0]);
    sim.spawn(client.host(), move |ctx| {
        with_concrete::<Pinger, _>(&ctx.kernel(), "pinger", |p| {
            p.run_series(ctx, server_ip, WARMUP_ITERS, 0).unwrap();
            let total = p.run_series(ctx, server_ip, LATENCY_ITERS, 0).unwrap();
            *o2.lock() = total / LATENCY_ITERS as u64;
        })
        .unwrap();
    });
    let r = sim.run_until_idle();
    assert_eq!(r.blocked, 0, "pinger run must drain");
    let v = *out.lock();
    v
}

/// Formats nanoseconds as the paper's msec with two decimals.
pub fn ms(ns: u64) -> String {
    format!("{:.2}", ns as f64 / 1e6)
}

/// Prints a table header in the paper's style.
pub fn print_table_header(title: &str, columns: &[&str]) {
    println!("\n{title}");
    println!("{}", "=".repeat(title.len()));
    let mut line = String::new();
    for c in columns {
        line.push_str(&format!("{c:>24}"));
    }
    println!("{line}");
    println!("{}", "-".repeat(24 * columns.len()));
}

/// Prints one table row.
pub fn print_row(cells: &[String]) {
    let mut line = String::new();
    for c in cells {
        line.push_str(&format!("{c:>24}"));
    }
    println!("{line}");
}
