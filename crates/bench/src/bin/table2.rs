//! Table II — Monolithic RPC versus Layered RPC, both over VIP, plus the
//! FRAGMENT-alone throughput figure quoted in §4.2.

use xbench::{measure_stack, ms, print_row, print_table_header};
use xrpc::stacks::{L_RPC_VIP, M_RPC_VIP};

fn main() {
    print_table_header(
        "Table II: Monolithic RPC versus Layered RPC (paper value in parentheses)",
        &[
            "Configuration",
            "Latency (msec)",
            "Thrpt (kbytes/sec)",
            "Incr (msec/1k)",
        ],
    );
    for (stack, p_lat, p_thr, p_inc) in [
        (&M_RPC_VIP, "1.79", "860", "1.04"),
        (&L_RPC_VIP, "1.93", "839", "1.03"),
    ] {
        let r = measure_stack(stack);
        print_row(&[
            stack.name.to_string(),
            format!("{} ({p_lat})", ms(r.latency_ns)),
            format!("{:.0} ({p_thr})", r.throughput_kbs),
            format!("{:.2} ({p_inc})", r.incr_ms_per_k),
        ]);
    }

    // §4.2: "FRAGMENT by itself ... achieves a throughput rate of
    // 865k-bytes/second." Measured with the pinger bouncing 16k messages
    // one-way-loaded (sink shape approximated by the echo harness carrying
    // the payload out and a small echo back is not comparable, so measure
    // one-way paced sends like the RPC sink: use the rpc harness's
    // rtt_for_size on a CHANNEL-free stack is not possible — instead report
    // the L_RPC incremental cost, which §4.2 attributes to FRAGMENT alone).
    println!();
    println!(
        "(FRAGMENT alone: paper reports 865 kbytes/sec; our FRAGMENT-limited\n\
         incremental cost matches the L_RPC row above because only FRAGMENT\n\
         touches the per-packet path — see EXPERIMENTS.md.)"
    );
}
