//! `xbench mclient` — the million-client closed-loop soak.
//!
//! Drives [`xload::MClientSpec`]: one persistent stackless machine per
//! client plus a transient coroutine per in-flight call, which is what
//! lets a single-threaded deterministic engine hold a million concurrent
//! closed-loop clients in a few hundred megabytes. Emits
//! `BENCH_mclient.json` (self-validated before writing; the process exits
//! non-zero if a required field is missing or the run fails its own
//! acceptance checks). Usage:
//!
//! ```text
//! mclient [--clients N] [--quick] [--out PATH]
//! ```
//!
//! `--quick` defaults the population to 100 000 (the CI smoke size);
//! otherwise the default is the full million. Acceptance is asserted
//! in-process: every client completes every call, nothing is left
//! blocked, and `peak_live >= clients` — the engine's own proof that the
//! whole population was concurrently resident.

use std::fmt::Write as _;
use std::time::Instant;

use xload::MClientSpec;

struct Opts {
    clients: u32,
    stagger_per_client_ns: Option<u64>,
    quick: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let mut clients: Option<u32> = None;
    let mut stagger_per_client_ns = None;
    let mut quick = false;
    let mut out = "BENCH_mclient.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--clients" => {
                let v = args.next().expect("--clients needs a value");
                clients = Some(v.parse().expect("--clients needs a number"));
            }
            "--stagger" => {
                let v = args
                    .next()
                    .expect("--stagger needs a value (ns per client)");
                stagger_per_client_ns = Some(v.parse().expect("--stagger needs a number"));
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: mclient [--clients N] [--stagger NS_PER_CLIENT] [--quick] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }
    let clients = clients.unwrap_or(if quick { 100_000 } else { 1_000_000 });
    Opts {
        clients,
        stagger_per_client_ns,
        quick,
        out,
    }
}

/// Required fields of the `xbench.mclient/1` schema; the harness refuses
/// to write a file missing any of them, and `ci.sh` greps the same list.
const REQUIRED_FIELDS: &[&str] = &[
    "\"schema\"",
    "\"quick\"",
    "\"clients\"",
    "\"calls_per_client\"",
    "\"attempted\"",
    "\"completed\"",
    "\"failed\"",
    "\"peak_live\"",
    "\"events\"",
    "\"fuel_used\"",
    "\"wall_secs\"",
    "\"events_per_sec\"",
    "\"latency_ns\"",
    "\"p50\"",
    "\"p99\"",
];

fn validate(json: &str) -> Result<(), String> {
    for f in REQUIRED_FIELDS {
        if !json.contains(f) {
            return Err(format!("missing required field {f}"));
        }
    }
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    if opens != closes {
        return Err(format!("unbalanced brackets: {opens} open, {closes} close"));
    }
    if !json.contains("\"schema\": \"xbench.mclient/1\"") {
        return Err("schema tag is not xbench.mclient/1".to_string());
    }
    Ok(())
}

fn main() {
    let opts = parse_opts();
    let mut spec = MClientSpec::sized(opts.clients);
    if let Some(per_client) = opts.stagger_per_client_ns {
        spec.stagger_ns = u64::from(opts.clients) * per_client;
    }
    eprintln!(
        "mclient soak: {} clients x {} call(s), stagger {} virtual secs",
        spec.clients,
        spec.calls_per_client,
        spec.stagger_ns / 1_000_000_000
    );
    let t0 = Instant::now();
    let report = spec.run();
    let wall = t0.elapsed().as_secs_f64();
    let events_per_sec = report.run.events as f64 / wall.max(1e-9);
    eprintln!(
        "  {} calls in {:.1}s wall ({} events, {:.0} events/sec), peak_live {}",
        report.completed, wall, report.run.events, events_per_sec, report.run.peak_live
    );

    // Acceptance, asserted in-process so a regression cannot write a
    // plausible-looking artifact.
    let expect = u64::from(spec.clients) * u64::from(spec.calls_per_client);
    assert_eq!(report.attempted, expect, "every client must call");
    assert_eq!(report.completed, expect, "every call must complete");
    assert_eq!(report.failed, 0, "no call may fail on the quiet segment");
    assert_eq!(report.run.blocked, 0, "the run must drain");
    assert!(
        report.run.peak_live >= spec.clients as usize,
        "peak_live {} < clients {} — the population was not concurrent",
        report.run.peak_live,
        spec.clients
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"xbench.mclient/1\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"label\": \"{}\",", report.label);
    let _ = writeln!(json, "  \"clients\": {},", report.clients);
    let _ = writeln!(json, "  \"calls_per_client\": {},", report.calls_per_client);
    let _ = writeln!(json, "  \"stagger_ns\": {},", spec.stagger_ns);
    let _ = writeln!(json, "  \"attempted\": {},", report.attempted);
    let _ = writeln!(json, "  \"completed\": {},", report.completed);
    let _ = writeln!(json, "  \"failed\": {},", report.failed);
    let _ = writeln!(json, "  \"peak_live\": {},", report.run.peak_live);
    let _ = writeln!(json, "  \"events\": {},", report.run.events);
    let _ = writeln!(json, "  \"fuel_used\": {},", report.run.fuel_used);
    let _ = writeln!(json, "  \"wall_secs\": {wall:.3},");
    let _ = writeln!(json, "  \"events_per_sec\": {events_per_sec:.1},");
    let l = &report.latency;
    let _ = writeln!(
        json,
        "  \"latency_ns\": {{\"count\": {}, \"min\": {}, \"mean\": {}, \"p50\": {}, \
         \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        l.count, l.min_ns, l.mean_ns, l.p50_ns, l.p90_ns, l.p99_ns, l.p999_ns, l.max_ns
    );
    json.push_str("}\n");

    if let Err(e) = validate(&json) {
        eprintln!("BENCH_mclient.json failed schema validation: {e}");
        std::process::exit(1);
    }
    std::fs::write(&opts.out, &json).expect("write BENCH_mclient.json");
    eprintln!("wrote {}", opts.out);
}
