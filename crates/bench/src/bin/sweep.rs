//! The §4 throughput series in full: round-trip time and effective
//! throughput for request sizes 1 k … 16 k bytes (null replies), for every
//! configuration in Tables I and II. The tables quote only the 16 k point
//! and the incremental slope; this prints the whole series so the linearity
//! claim (and the wire-saturation crossover) is visible.

use xbench::{ms, print_row, print_table_header, rpc_rtt_for_size, THROUGHPUT_ITERS};
use xkernel::par;
use xrpc::stacks::{L_RPC_VIP, L_RPC_VIPSIZE, M_RPC_ETH, M_RPC_IP, M_RPC_VIP};

fn main() {
    let stacks = [
        &M_RPC_ETH,
        &M_RPC_IP,
        &M_RPC_VIP,
        &L_RPC_VIP,
        &L_RPC_VIPSIZE,
    ];
    let sizes: Vec<usize> = (1..=16).map(|k| k * 1024).collect();

    print_table_header(
        "Throughput sweep: round-trip msec per request size (null reply)",
        &[
            "size",
            "M_RPC-ETH",
            "M_RPC-IP",
            "M_RPC-VIP",
            "L_RPC-VIP",
            "L_RPC-VIPSIZE",
        ],
    );
    // One rig per (stack, size) keeps runs independent and deterministic —
    // which also makes the whole grid a fan-out: run_indexed returns the
    // cells in input order, so the table is identical at any thread count.
    let cells: Vec<(usize, &xrpc::stacks::StackDef)> = sizes
        .iter()
        .flat_map(|&size| stacks.iter().map(move |&stack| (size, stack)))
        .collect();
    let results = par::run_indexed(cells, par::default_threads(), |&(size, stack)| {
        rpc_rtt_for_size(stack, size, THROUGHPUT_ITERS / 2)
    });
    let table: Vec<Vec<u64>> = results.chunks(stacks.len()).map(<[u64]>::to_vec).collect();
    for (i, &size) in sizes.iter().enumerate() {
        let mut cells = vec![format!("{}k", size / 1024)];
        for v in &table[i] {
            cells.push(ms(*v));
        }
        print_row(&cells);
    }

    print_table_header(
        "Effective throughput (kbytes/sec) at each size",
        &[
            "size",
            "M_RPC-ETH",
            "M_RPC-IP",
            "M_RPC-VIP",
            "L_RPC-VIP",
            "L_RPC-VIPSIZE",
        ],
    );
    for (i, &size) in sizes.iter().enumerate() {
        let mut cells = vec![format!("{}k", size / 1024)];
        for v in &table[i] {
            let kbs = size as f64 / (*v as f64 / 1e9) / 1024.0;
            cells.push(format!("{kbs:.0}"));
        }
        print_row(&cells);
    }
    println!(
        "\n(The paper quotes the 16k row — 863/836/860/839 kbytes/sec — and the\n\
         per-1k slope; both saturate the 10 Mbps wire, visible here as the\n\
         flattening of every column as size grows.)"
    );
}
