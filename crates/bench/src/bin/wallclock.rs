//! `xbench wallclock` — the wall-clock performance harness.
//!
//! Every other binary in this crate reports **virtual** time: calibrated
//! Sun 3/75 nanoseconds that reproduce the paper's tables bit for bit.
//! This one measures how fast the simulator itself runs on the host —
//! null-RPC calls per second over the inline-synchronous network, scheduler
//! events per second in discrete-event mode, and the chaos soak matrix's
//! wall time sequentially versus fanned out across OS threads.
//!
//! Emits `BENCH_wallclock.json` (self-validated before writing; the
//! process exits non-zero if a required field is missing). Usage:
//!
//! ```text
//! wallclock [--quick] [--threads N] [--out PATH]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use chaos::{full_matrix, run_matrix};
use parking_lot::Mutex;
use std::sync::Arc;
use xbench::{registry, rpc_rig};
use xkernel::par;
use xkernel::sim::Mode;
use xrpc::procs::NULL_PROC;
use xrpc::stacks::{StackDef, ALL_RPC_STACKS};

struct Opts {
    quick: bool,
    threads: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        threads: par::default_threads(),
        out: "BENCH_wallclock.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                opts.threads = v.parse().expect("--threads needs a number");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: wallclock [--quick] [--threads N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Wall-clock time of `calls` null RPCs over the inline-synchronous
/// network (one call chain on one thread, no scheduler).
fn null_rpc_wall(stack: &StackDef, calls: u32) -> f64 {
    let tb = rpc_rig(stack, Mode::Inline);
    let ctx = tb.sim.ctx(tb.client.host());
    let k = tb.client.clone();
    let server_ip = tb.server_ip;
    // Warm ARP and session caches outside the timed window.
    xrpc::call(&ctx, &k, stack.entry, server_ip, NULL_PROC, Vec::new()).expect("warm-up call");
    let t0 = Instant::now();
    for _ in 0..calls {
        xrpc::call(&ctx, &k, stack.entry, server_ip, NULL_PROC, Vec::new()).expect("null call");
    }
    t0.elapsed().as_secs_f64()
}

/// Runs `calls` null RPCs in discrete-event mode and returns
/// (events executed, wall seconds) for the whole scheduled run.
fn scheduled_events_wall(stack: &StackDef, calls: u32) -> (u64, f64) {
    let tb = rpc_rig(stack, Mode::Scheduled);
    let server_ip = tb.server_ip;
    let entry = stack.entry;
    let done = Arc::new(Mutex::new(false));
    let d2 = Arc::clone(&done);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        for _ in 0..calls {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).expect("null call");
        }
        *d2.lock() = true;
    });
    let t0 = Instant::now();
    let report = tb.sim.run_until_idle();
    let wall = t0.elapsed().as_secs_f64();
    assert_eq!(report.blocked, 0, "scheduled run must drain");
    assert!(*done.lock(), "client must finish");
    (report.events, wall)
}

/// Escapes a string for JSON (the only non-ASCII-safe thing we emit is a
/// stack name, but be correct anyway).
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Required fields of the `xbench.wallclock/1` schema. The harness refuses
/// to write a file that is missing any of them, and `ci.sh` greps for the
/// same list, so a field can't silently vanish from either side.
const REQUIRED_FIELDS: &[&str] = &[
    "\"schema\"",
    "\"quick\"",
    "\"cores\"",
    "\"threads\"",
    "\"null_rpc\"",
    "\"calls_per_sec\"",
    "\"scheduled\"",
    "\"events_per_sec\"",
    "\"soak\"",
    "\"scenarios\"",
    "\"sequential_wall_secs\"",
    "\"parallel_wall_secs\"",
    "\"per_stack_wall_secs\"",
    "\"speedup\"",
    "\"reports_bit_identical\"",
];

fn validate(json: &str) -> Result<(), String> {
    for f in REQUIRED_FIELDS {
        if !json.contains(f) {
            return Err(format!("missing required field {f}"));
        }
    }
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    if opens != closes {
        return Err(format!("unbalanced brackets: {opens} open, {closes} close"));
    }
    if !json.contains("\"schema\": \"xbench.wallclock/1\"") {
        return Err("schema tag is not xbench.wallclock/1".to_string());
    }
    Ok(())
}

fn main() {
    let opts = parse_opts();
    // Honest core count: available_parallelism alone under-reports inside
    // cgroup-pinned containers (see par::detect_cores), which used to make
    // this harness claim cores: 1 / threads: 1 on multi-core hosts.
    let cores = par::detect_cores();
    let (null_calls, sched_calls, soak_seeds, soak_calls) = if opts.quick {
        (200u32, 100u32, 1u64, 4u32)
    } else {
        (2000u32, 400u32, 2u64, 8u32)
    };

    // Touch the registry once up front so first-use construction cost does
    // not land inside the first stack's timed window.
    let _ = registry();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"xbench.wallclock/1\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"threads\": {},", opts.threads);

    // --- Null-RPC calls/sec, inline-synchronous network. ---
    eprintln!("null-RPC calls/sec (inline, {null_calls} calls per stack)");
    json.push_str("  \"null_rpc\": [\n");
    for (i, stack) in ALL_RPC_STACKS.iter().enumerate() {
        let wall = null_rpc_wall(stack, null_calls);
        let rate = f64::from(null_calls) / wall;
        eprintln!("  {:>12}  {:>12.0} calls/sec", stack.name, rate);
        let _ = writeln!(
            json,
            "    {{\"stack\": {}, \"calls\": {}, \"wall_secs\": {:.6}, \"calls_per_sec\": {:.1}}}{}",
            js(stack.name),
            null_calls,
            wall,
            rate,
            if i + 1 < ALL_RPC_STACKS.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // --- Scheduler events/sec, discrete-event mode. ---
    eprintln!("scheduler events/sec (scheduled, {sched_calls} calls per stack)");
    json.push_str("  \"scheduled\": [\n");
    for (i, stack) in ALL_RPC_STACKS.iter().enumerate() {
        let (events, wall) = scheduled_events_wall(stack, sched_calls);
        let rate = events as f64 / wall;
        eprintln!("  {:>12}  {:>12.0} events/sec", stack.name, rate);
        let _ = writeln!(
            json,
            "    {{\"stack\": {}, \"events\": {}, \"wall_secs\": {:.6}, \"events_per_sec\": {:.1}}}{}",
            js(stack.name),
            events,
            wall,
            rate,
            if i + 1 < ALL_RPC_STACKS.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    // --- Chaos soak matrix: sequential vs parallel wall time. ---
    let scenarios = full_matrix(0xbe9c_0000, soak_seeds, soak_calls);
    eprintln!(
        "soak matrix: {} scenarios, sequential then {} threads",
        scenarios.len(),
        opts.threads
    );
    // Per-stack sequential wall time: each scenario timed individually so
    // the per-stack split costs nothing extra.
    let mut per_stack: Vec<(&'static str, f64)> = Vec::new();
    let mut seq_reports = Vec::with_capacity(scenarios.len());
    let t_seq = Instant::now();
    for sc in &scenarios {
        let t0 = Instant::now();
        seq_reports.push(sc.run_checked());
        let dt = t0.elapsed().as_secs_f64();
        let name = sc.stack.name();
        match per_stack.iter_mut().find(|(n, _)| *n == name) {
            Some((_, acc)) => *acc += dt,
            None => per_stack.push((name, dt)),
        }
    }
    let seq_wall = t_seq.elapsed().as_secs_f64();
    let t_par = Instant::now();
    let par_reports = run_matrix(scenarios.clone(), opts.threads, true);
    let par_wall = t_par.elapsed().as_secs_f64();
    let identical = seq_reports == par_reports;
    let speedup = seq_wall / par_wall;
    eprintln!(
        "  sequential {seq_wall:.3}s, parallel {par_wall:.3}s, speedup {speedup:.2}x, \
         bit-identical: {identical}"
    );

    json.push_str("  \"soak\": {\n");
    let _ = writeln!(json, "    \"scenarios\": {},", scenarios.len());
    let _ = writeln!(json, "    \"calls_per_scenario\": {soak_calls},");
    let _ = writeln!(json, "    \"sequential_wall_secs\": {seq_wall:.6},");
    let _ = writeln!(json, "    \"parallel_wall_secs\": {par_wall:.6},");
    let _ = writeln!(json, "    \"parallel_threads\": {},", opts.threads);
    let _ = writeln!(json, "    \"speedup\": {speedup:.3},");
    let _ = writeln!(json, "    \"reports_bit_identical\": {identical},");
    json.push_str("    \"per_stack_wall_secs\": [\n");
    for (i, (name, secs)) in per_stack.iter().enumerate() {
        let _ = writeln!(
            json,
            "      {{\"stack\": {}, \"wall_secs\": {:.6}}}{}",
            js(name),
            secs,
            if i + 1 < per_stack.len() { "," } else { "" }
        );
    }
    json.push_str("    ]\n");
    json.push_str("  }\n");
    json.push_str("}\n");

    if let Err(e) = validate(&json) {
        eprintln!("BENCH_wallclock.json failed schema validation: {e}");
        std::process::exit(1);
    }
    assert!(
        identical,
        "parallel soak reports diverged from sequential — determinism broken"
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_wallclock.json");
    eprintln!("wrote {}", opts.out);
}
