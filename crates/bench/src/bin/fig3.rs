//! §4.3 / Figure 3 — Dynamically removing layers.
//!
//! The alternative configuration SELECT-CHANNEL-VIPSIZE-{FRAGMENT, VIPADDR}
//! bypasses FRAGMENT for small messages. The paper predicts saving
//! ≈0.21 msec (FRAGMENT's increment) minus ≈0.06 msec (VIPSIZE's own test),
//! landing at 1.78 msec — equal to the monolithic protocol.

use xbench::{ms, print_row, print_table_header, rpc_latency};
use xrpc::stacks::{L_RPC_VIP, L_RPC_VIPSIZE, M_RPC_VIP};

fn main() {
    print_table_header(
        "Fig. 3 / Sec 4.3: Dynamically Removing Layers (paper in parentheses)",
        &["Configuration", "Latency (msec)"],
    );
    let orig = rpc_latency(&L_RPC_VIP);
    let bypass = rpc_latency(&L_RPC_VIPSIZE);
    let mono = rpc_latency(&M_RPC_VIP);
    print_row(&[
        "SELECT-CHANNEL-FRAGMENT-VIP".into(),
        format!("{} (1.93)", ms(orig)),
    ]);
    print_row(&[
        "SELECT-CHANNEL-VIPSIZE-...".into(),
        format!("{} (1.78)", ms(bypass)),
    ]);
    print_row(&[
        "M_RPC-VIP (reference)".into(),
        format!("{} (1.79)", ms(mono)),
    ]);
    println!();
    println!(
        "Bypass saving: {} msec (paper: ~0.15 = 0.21 FRAGMENT - 0.06 VIPSIZE)",
        ms(orig.saturating_sub(bypass))
    );
    println!(
        "Layered-with-bypass vs monolithic: {:+.2} msec (paper: -0.01)",
        (bypass as f64 - mono as f64) / 1e6
    );
}
