//! §5 ablations — the design choices the Discussion section calls out:
//!
//! 1. **Buffer management**: the header-headroom message scheme versus the
//!    legacy allocate-a-buffer-per-header scheme (paper: 0.11 vs 0.50 msec
//!    minimum cost per layer).
//! 2. **Layer scaling**: a stack of N trivial layers costs ≈N × the trivial
//!    layer floor, making "protocol stacks with on the order of ten layers"
//!    reasonable.
//! 3. **Session caching**: the cost a cold path pays (ARP probe, session
//!    creation at every level) versus the steady state the paper's
//!    "cache open sessions" efficiency rule buys.

use std::sync::Arc;

use parking_lot::Mutex;

use inet::testbed::two_hosts;
use xbench::{ms, print_row, print_table_header, registry, LATENCY_ITERS, WARMUP_ITERS};
use xkernel::msg::HeaderPolicy;
use xkernel::prelude::*;
use xkernel::sim::SimConfig;
use xrpc::procs::NULL_PROC;

/// Latency of a null RPC through L_RPC-VIP with `extra` null layers wedged
/// between SELECT and CHANNEL, and the given message header policy.
fn latency_with(extra_layers: usize, policy: HeaderPolicy) -> u64 {
    let mut graph = String::from("vip -> ip eth arp\nfragment -> vip\nchannel -> fragment\n");
    let mut below = String::from("channel");
    for i in 0..extra_layers {
        graph.push_str(&format!("null{i}: null -> {below}\n"));
        below = format!("null{i}");
    }
    graph.push_str(&format!("select -> {below}\n"));

    let reg = registry();
    let cfg = SimConfig::scheduled().with_policy(policy);
    let tb = two_hosts(cfg, &reg, &graph).expect("testbed");
    xrpc::procs::register_standard(&tb.server, "select").unwrap();
    let server_ip = tb.server_ip;
    let out = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        let id = k.lookup("select").unwrap();
        let parts = ParticipantSet::pair(
            Participant::proto(u32::from(NULL_PROC)),
            Participant::host(server_ip),
        );
        let sess = k.open(ctx, id, id, &parts).unwrap();
        let call = |ctx: &Ctx| {
            sess.push(ctx, ctx.empty_msg()).unwrap().unwrap();
        };
        for _ in 0..WARMUP_ITERS {
            call(ctx);
        }
        let t0 = ctx.now();
        for _ in 0..LATENCY_ITERS {
            call(ctx);
        }
        *o2.lock() = (ctx.now() - t0) / LATENCY_ITERS as u64;
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0);
    let v = *out.lock();
    v
}

fn main() {
    // 1. Buffer management.
    print_table_header(
        "Ablation 1: header buffer management (paper: 0.11 vs 0.50 msec/layer floor)",
        &["Scheme", "L_RPC latency (msec)", "per-layer floor (msec)"],
    );
    let headroom = latency_with(0, HeaderPolicy::default());
    let alloc = latency_with(0, HeaderPolicy::AllocPerHeader);
    // Per-layer floor: add 4 null layers under each policy and divide.
    let headroom4 = latency_with(4, HeaderPolicy::default());
    let alloc4 = latency_with(4, HeaderPolicy::AllocPerHeader);
    print_row(&[
        "headroom (tuned)".into(),
        ms(headroom),
        ms((headroom4 - headroom) / 4).to_string(),
    ]);
    print_row(&[
        "alloc-per-header (legacy)".into(),
        ms(alloc),
        ms((alloc4 - alloc) / 4).to_string(),
    ]);

    // 2. Layer scaling.
    print_table_header(
        "Ablation 2: layer scaling (trivial layers between SELECT and CHANNEL)",
        &["Extra layers", "Latency (msec)", "Increment (msec)"],
    );
    let mut prev = headroom;
    for n in [0usize, 1, 2, 4, 8] {
        let lat = if n == 0 {
            headroom
        } else {
            latency_with(n, HeaderPolicy::default())
        };
        print_row(&[
            n.to_string(),
            ms(lat),
            if n == 0 {
                "-".into()
            } else {
                ms(lat.saturating_sub(prev))
            },
        ]);
        prev = lat;
    }
    println!(
        "\n(The paper's claim: each trivial layer costs ≥0.11 msec on a Sun \
         3/75,\n making ~10-layer stacks reasonable.)"
    );

    // 3. Session caching: first call (creates sessions at every level,
    // resolves ARP) vs steady state.
    print_table_header(
        "Ablation 3: session caching (the paper's first efficiency rule)",
        &["Call", "Latency (msec)"],
    );
    let reg = registry();
    let tb = two_hosts(
        SimConfig::scheduled(),
        &reg,
        "vip -> ip eth arp\nfragment -> vip\nchannel -> fragment\nselect -> channel\n",
    )
    .expect("testbed");
    xrpc::procs::register_standard(&tb.server, "select").unwrap();
    let server_ip = tb.server_ip;
    let samples: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&samples);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        for _ in 0..4 {
            let t0 = ctx.now();
            xrpc::call(ctx, &k, "select", server_ip, NULL_PROC, Vec::new()).unwrap();
            s2.lock().push(ctx.now() - t0);
        }
    });
    tb.sim.run_until_idle();
    let got = samples.lock();
    print_row(&["first (cold: opens + ARP)".into(), ms(got[0])]);
    print_row(&["second".into(), ms(got[1])]);
    print_row(&["steady state".into(), ms(got[3])]);
    println!(
        "\n(Without cached sessions every call would pay the first-call price;\n\
         caching makes it a one-time cost.)"
    );
}
