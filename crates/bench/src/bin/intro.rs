//! §1 introduction numbers: UDP/IP round trip in the x-kernel (2.00 msec)
//! versus SunOS 4.0 sockets (5.36 msec), and the §3.1 figure that the IP
//! layer costs 0.37 msec per RPC round trip.

use std::sync::Arc;

use parking_lot::Mutex;

use inet::testbed::two_hosts;
use inet::with_concrete;
use xbench::{
    ms, print_row, print_table_header, registry, rpc_latency, LATENCY_ITERS, WARMUP_ITERS,
};
use xkernel::prelude::*;
use xkernel::sim::SimConfig;
use xrpc::stacks::{M_RPC_ETH, M_RPC_IP};

/// UDP echo round trip using a pinger-style responder above UDP.
fn udp_latency(handicapped: bool) -> u64 {
    // The standard stack already includes udp->ip. For the SunOS model,
    // interpose a handicap layer charging socket-stack overheads between a
    // second UDP instance and IP.
    let reg = registry();
    let tb = two_hosts(
        SimConfig::scheduled(),
        &reg,
        if handicapped {
            "hcap: handicap as=ip switches=4 copy256=512 fixed_ns=900000 -> ip\n\
             udps: udp -> hcap\n"
        } else {
            ""
        },
    )
    .expect("testbed");
    let udp_name = if handicapped { "udps" } else { "udp" };
    // Server: echo every datagram arriving on port 7 back to the sender.
    struct UdpEcho {
        me: ProtoId,
    }
    impl Protocol for UdpEcho {
        fn name(&self) -> &'static str {
            "udpecho"
        }
        fn id(&self) -> ProtoId {
            self.me
        }
        fn open(&self, _c: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<SessionRef> {
            Err(XError::Unsupported("echo"))
        }
        fn open_enable(&self, _c: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<()> {
            Ok(())
        }
        fn demux(&self, ctx: &Ctx, lls: &SessionRef, msg: Message) -> XResult<()> {
            lls.push(ctx, msg)?;
            Ok(())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    // Client: waiter protocol that Vs a semaphore per echo received.
    struct UdpWait {
        me: ProtoId,
        sema: SharedSema,
    }
    impl Protocol for UdpWait {
        fn name(&self) -> &'static str {
            "udpwait"
        }
        fn id(&self) -> ProtoId {
            self.me
        }
        fn open(&self, _c: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<SessionRef> {
            Err(XError::Unsupported("wait"))
        }
        fn open_enable(&self, _c: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<()> {
            Ok(())
        }
        fn demux(&self, ctx: &Ctx, _lls: &SessionRef, _msg: Message) -> XResult<()> {
            self.sema.v(ctx);
            Ok(())
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let sema = SharedSema::new(0);
    let echo_id = tb
        .server
        .register("udpecho", |me| Ok(Arc::new(UdpEcho { me }) as ProtocolRef))
        .unwrap();
    let wait_sema = sema.clone();
    let wait_id = tb
        .client
        .register("udpwait", |me| {
            Ok(Arc::new(UdpWait {
                me,
                sema: wait_sema,
            }) as ProtocolRef)
        })
        .unwrap();
    {
        let ctx = tb.sim.ctx(tb.server.host());
        let udp = tb.server.lookup(udp_name).unwrap();
        let parts = ParticipantSet::local(Participant::default().with_port(7));
        tb.server.open_enable(&ctx, udp, echo_id, &parts).unwrap();
    }
    {
        let ctx = tb.sim.ctx(tb.client.host());
        let udp = tb.client.lookup(udp_name).unwrap();
        let parts = ParticipantSet::local(Participant::default().with_port(5000));
        tb.client.open_enable(&ctx, udp, wait_id, &parts).unwrap();
    }
    let server_ip = tb.server_ip;
    let udp_name2: String = udp_name.to_string();
    let out = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        let udp = k.lookup(&udp_name2).unwrap();
        let wait = k.lookup("udpwait").unwrap();
        let parts = ParticipantSet::pair(
            Participant::default().with_port(5000),
            Participant::host_port(server_ip, 7),
        );
        let sess = k.open(ctx, udp, wait, &parts).unwrap();
        let ping = || Message::from_user(vec![0u8; 16]);
        for _ in 0..WARMUP_ITERS {
            sess.push(ctx, ping()).unwrap();
            assert!(sema.p_timeout(ctx, 1_000_000_000));
        }
        let t0 = ctx.now();
        for _ in 0..LATENCY_ITERS {
            sess.push(ctx, ping()).unwrap();
            assert!(sema.p_timeout(ctx, 1_000_000_000));
        }
        *o2.lock() = (ctx.now() - t0) / LATENCY_ITERS as u64;
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0);
    let _ = with_concrete::<inet::udp::Udp, ()>(&tb.client, "udp", |_| ());
    let v = *out.lock();
    v
}

fn main() {
    print_table_header(
        "Sec 1 / 3.1: motivating numbers (paper in parentheses)",
        &["Measurement", "msec"],
    );
    let xk_udp = udp_latency(false);
    let sunos_udp = udp_latency(true);
    print_row(&[
        "UDP/IP round trip, x-kernel".into(),
        format!("{} (2.00)", ms(xk_udp)),
    ]);
    print_row(&[
        "UDP/IP round trip, SunOS model".into(),
        format!("{} (5.36)", ms(sunos_udp)),
    ]);
    let eth = rpc_latency(&M_RPC_ETH);
    let ip = rpc_latency(&M_RPC_IP);
    print_row(&[
        "IP cost per RPC round trip".into(),
        format!("{} (0.37)", ms(ip.saturating_sub(eth))),
    ]);
    print_row(&[
        "IP latency penalty on RPC".into(),
        format!(
            "{:.0}% (21%)",
            (ip as f64 - eth as f64) / eth as f64 * 100.0
        ),
    ]);
    println!();
}
