//! `xbench xload` — throughput and tail latency under offered load.
//!
//! For each of the six stacks (the five paper configurations plus Sun RPC
//! over UDP) this harness sweeps an open-loop Poisson arrival rate across
//! a multi-host Ethernet segment and reports goodput plus the latency
//! percentile table at every point, runs a closed-loop population sample,
//! and drives the routed two-segment internetwork for the IP-capable
//! stacks. Every spec in the batch is an independent simulation, so the
//! whole batch fans out across OS threads via [`xkernel::par`]; the
//! parallel reports must be `Eq`-identical to the sequential ones, and the
//! goodput curve of every sweep must be monotone until it saturates.
//!
//! Emits `BENCH_xload.json` (self-validated before writing; the process
//! exits non-zero on a schema violation, a non-monotone curve, or a
//! sequential/parallel divergence). Usage:
//!
//! ```text
//! xload [--quick] [--threads N] [--out PATH]
//! ```

use std::fmt::Write as _;

use xkernel::par;
use xload::{GenMode, LoadReport, LoadSpec, LoadStack, Topology};

struct Opts {
    quick: bool,
    threads: usize,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        threads: par::default_threads(),
        out: "BENCH_xload.json".to_string(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--threads" => {
                let v = args.next().expect("--threads needs a value");
                opts.threads = v.parse().expect("--threads needs a number");
            }
            "--out" => opts.out = args.next().expect("--out needs a path"),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: xload [--quick] [--threads N] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Escapes a string for JSON.
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Required fields of the `xbench.xload/1` schema; `ci.sh` greps for the
/// same list, so a field can't silently vanish from either side.
const REQUIRED_FIELDS: &[&str] = &[
    "\"schema\"",
    "\"quick\"",
    "\"threads\"",
    "\"sweep\"",
    "\"stack\"",
    "\"points\"",
    "\"offered_cps\"",
    "\"completed\"",
    "\"goodput_cps\"",
    "\"p50_ns\"",
    "\"p90_ns\"",
    "\"p99_ns\"",
    "\"p999_ns\"",
    "\"dropped\"",
    "\"rejected\"",
    "\"peak_queue\"",
    "\"monotone\"",
    "\"closed\"",
    "\"routed\"",
    "\"reports_bit_identical\"",
];

fn validate(json: &str) -> Result<(), String> {
    for f in REQUIRED_FIELDS {
        if !json.contains(f) {
            return Err(format!("missing required field {f}"));
        }
    }
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    if opens != closes {
        return Err(format!("unbalanced brackets: {opens} open, {closes} close"));
    }
    if !json.contains("\"schema\": \"xbench.xload/1\"") {
        return Err("schema tag is not xbench.xload/1".to_string());
    }
    Ok(())
}

/// A goodput curve is acceptable when each point either keeps up with the
/// previous one (monotone within 5%) or sits on the saturation plateau
/// (within 20% of the curve's maximum).
fn monotone_then_saturating(goodputs: &[u64]) -> bool {
    let max = goodputs.iter().copied().max().unwrap_or(0);
    goodputs.windows(2).all(|w| {
        let floor = w[0].saturating_mul(95) / 100;
        w[1] >= floor || w[1].saturating_mul(5) >= max.saturating_mul(4)
    })
}

/// One JSON object for a load report (a sweep point or a sample row).
fn point_json(r: &LoadReport) -> String {
    format!(
        "{{\"gen\": {}, \"offered_cps\": {}, \"attempted\": {}, \"completed\": {}, \
         \"failed\": {}, \"goodput_cps\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}, \"dropped\": {}, \
         \"rejected\": {}, \"peak_queue\": {}}}",
        js(&r.gen),
        r.offered_cps,
        r.attempted,
        r.completed,
        r.failed,
        r.goodput_cps,
        r.latency.p50_ns,
        r.latency.p90_ns,
        r.latency.p99_ns,
        r.latency.p999_ns,
        r.latency.max_ns,
        r.shepherd.dropped,
        r.shepherd.rejected,
        r.shepherd.peak_queue,
    )
}

fn main() {
    let opts = parse_opts();
    // Full-mode scale is bounded by in-flight call processes: past
    // saturation an open loop piles up outstanding calls, and each costs a
    // live simulated process until its reply. ~800 arrivals at the top
    // rate keeps the engine comfortably inside process memory.
    let (rates, duration_ns, hosts, closed_clients) = if opts.quick {
        (vec![100u64, 400, 1200], 150_000_000u64, 2usize, 6u32)
    } else {
        (vec![100u64, 400, 1600, 3200], 250_000_000u64, 4usize, 12u32)
    };
    let stacks = LoadStack::all();

    // The whole batch as one spec vector, so sequential-vs-parallel
    // bit-identity covers every number this harness reports.
    let mut specs: Vec<LoadSpec> = Vec::new();
    let base = |stack: LoadStack| LoadSpec {
        stack,
        topo: Topology::Segment { hosts },
        gen: GenMode::Open { rate_cps: 100 },
        duration_ns,
        payload: 64,
        seed: 0x10ad,
        shepherds: 2,
        pending: 16,
        reject: false,
        trace: false,
    };
    for &stack in &stacks {
        for &r in &rates {
            specs.push(LoadSpec {
                gen: GenMode::Open { rate_cps: r },
                ..base(stack)
            });
        }
    }
    let closed_at = specs.len();
    for &stack in &stacks {
        specs.push(LoadSpec {
            gen: GenMode::Closed {
                clients: closed_clients,
                think_ns: 2_000_000,
            },
            ..base(stack)
        });
    }
    let routed_at = specs.len();
    let routed: Vec<LoadStack> = stacks.iter().copied().filter(|s| s.routable()).collect();
    for &stack in &routed {
        specs.push(LoadSpec {
            topo: Topology::Routed { hosts },
            gen: GenMode::Open { rate_cps: rates[1] },
            ..base(stack)
        });
    }

    eprintln!(
        "xload: {} specs ({} stacks x {} rates + closed + routed), sequential then {} threads",
        specs.len(),
        stacks.len(),
        rates.len(),
        opts.threads
    );
    let seq = par::run_indexed(specs.clone(), 1, LoadSpec::run);
    let parl = par::run_indexed(specs, opts.threads, LoadSpec::run);
    let identical = seq == parl;

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"xbench.xload/1\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"threads\": {},", opts.threads);
    let _ = writeln!(json, "  \"client_hosts\": {hosts},");
    let _ = writeln!(json, "  \"duration_ns\": {duration_ns},");

    let mut all_monotone = true;
    json.push_str("  \"sweep\": [\n");
    for (si, stack) in stacks.iter().enumerate() {
        let points = &seq[si * rates.len()..(si + 1) * rates.len()];
        let goodputs: Vec<u64> = points.iter().map(|r| r.goodput_cps).collect();
        let mono = monotone_then_saturating(&goodputs);
        all_monotone &= mono;
        eprintln!(
            "  {:>13}  goodput {:?} cps, p99 {:?} us, monotone {}",
            stack.name(),
            goodputs,
            points
                .iter()
                .map(|r| r.latency.p99_ns / 1000)
                .collect::<Vec<_>>(),
            mono
        );
        let _ = writeln!(json, "    {{\"stack\": {},", js(stack.name()));
        let _ = writeln!(json, "     \"monotone\": {mono},");
        json.push_str("     \"points\": [\n");
        for (i, r) in points.iter().enumerate() {
            let _ = writeln!(
                json,
                "       {}{}",
                point_json(r),
                if i + 1 < points.len() { "," } else { "" }
            );
        }
        json.push_str("     ]\n");
        let _ = writeln!(
            json,
            "    }}{}",
            if si + 1 < stacks.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    json.push_str("  \"closed\": [\n");
    for (i, (stack, r)) in stacks.iter().zip(&seq[closed_at..routed_at]).enumerate() {
        let _ = writeln!(
            json,
            "    {{\"stack\": {}, \"point\": {}}}{}",
            js(stack.name()),
            point_json(r),
            if i + 1 < stacks.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    json.push_str("  \"routed\": [\n");
    for (i, (stack, r)) in routed.iter().zip(&seq[routed_at..]).enumerate() {
        let _ = writeln!(
            json,
            "    {{\"stack\": {}, \"point\": {}}}{}",
            js(stack.name()),
            point_json(r),
            if i + 1 < routed.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");

    let _ = writeln!(json, "  \"reports_bit_identical\": {identical}");
    json.push_str("}\n");

    if let Err(e) = validate(&json) {
        eprintln!("BENCH_xload.json failed schema validation: {e}");
        std::process::exit(1);
    }
    assert!(
        identical,
        "parallel load reports diverged from sequential — determinism broken"
    );
    assert!(
        all_monotone,
        "a goodput curve regressed before saturating — see sweep output"
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_xload.json");
    eprintln!("wrote {}", opts.out);
}
