//! Table I — Evaluating VIP.
//!
//! Latency, 16 k throughput, and incremental cost for monolithic Sprite RPC
//! over ETH, IP, and VIP, plus the modelled native-Sprite baseline `N_RPC`
//! (see DESIGN.md §1: the native kernel is modelled, not rebuilt).

use xbench::{measure_stack, ms, print_row, print_table_header};
use xrpc::stacks::{StackDef, M_RPC_ETH, M_RPC_IP, M_RPC_VIP};

/// The modelled native-Sprite baseline: M_RPC over an Ethernet handicapped
/// with, per message sent: one extra process switch (Sprite's non-shepherd
/// process architecture) and one extra data copy (no single-buffer message
/// path), plus the paper's footnoted 0.2 msec crash/reboot-detection
/// callback per round trip.
pub const N_RPC: StackDef = StackDef {
    name: "N_RPC (modelled)",
    graph: "hcap: handicap as=eth switches=1 copy256=256 fixed_ns=200000 -> eth\n\
            mrpc: sprite -> hcap arp\n",
    entry: "mrpc",
};

fn main() {
    let paper: [(&StackDef, &str, &str, &str); 4] = [
        (&N_RPC, "2.6", "700+", "1.2"),
        (&M_RPC_ETH, "1.73", "863", "1.04"),
        (&M_RPC_IP, "2.10", "836", "1.05"),
        (&M_RPC_VIP, "1.79", "860", "1.04"),
    ];
    print_table_header(
        "Table I: Evaluating VIP (paper value in parentheses)",
        &[
            "Configuration",
            "Latency (msec)",
            "Thrpt (kbytes/sec)",
            "Incr (msec/1k)",
        ],
    );
    for (stack, p_lat, p_thr, p_inc) in paper {
        let r = measure_stack(stack);
        print_row(&[
            stack.name.to_string(),
            format!("{} ({p_lat})", ms(r.latency_ns)),
            format!("{:.0} ({p_thr})", r.throughput_kbs),
            format!("{:.2} ({p_inc})", r.incr_ms_per_k),
        ]);
    }
    println!();
}
