//! `xbench xprof` — where the microseconds go.
//!
//! Reruns the Table I/II null-RPC latency experiment with structured
//! tracing enabled and decomposes each stack's round trip into per-layer,
//! per-operation-class costs. Three artifacts per run:
//!
//! * `XPROF.folded` — flamegraph-compatible folded stacks (one root frame
//!   per stack configuration; feed to `flamegraph.pl` or speedscope).
//! * `XPROF.md` — the per-layer cost tables in markdown.
//! * `BENCH_xprof.json` — machine-readable summary (self-validated before
//!   writing; the process exits non-zero on a missing field).
//!
//! The harness asserts the ledger's conservation invariant before writing
//! anything: every client-host bucket must sum to the measured window to
//! the nanosecond, and the traced latency must equal the untraced golden
//! measurement bit for bit.
//!
//! ```text
//! xprof [--quick] [--out-dir DIR]
//! ```

use std::fmt::Write as _;
use std::path::PathBuf;

use xbench::{rpc_latency, rpc_latency_traced, TracedLatency, LATENCY_ITERS};
use xrpc::stacks::ALL_RPC_STACKS;

struct Opts {
    quick: bool,
    out_dir: PathBuf,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        out_dir: PathBuf::from("."),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => opts.quick = true,
            "--out-dir" => {
                opts.out_dir = PathBuf::from(args.next().expect("--out-dir needs a value"))
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: xprof [--quick] [--out-dir DIR]");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Escapes a string for JSON.
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Required fields of the `xbench.xprof/1` schema; `ci.sh` greps for the
/// same list, so neither side can silently drop one.
const REQUIRED_FIELDS: &[&str] = &[
    "\"schema\"",
    "\"quick\"",
    "\"iters\"",
    "\"stacks\"",
    "\"latency_ns\"",
    "\"window_ns\"",
    "\"client_sum_ns\"",
    "\"conserved\"",
    "\"layers\"",
];

fn validate(json: &str) -> Result<(), String> {
    for f in REQUIRED_FIELDS {
        if !json.contains(f) {
            return Err(format!("missing required field {f}"));
        }
    }
    let opens = json.matches(['{', '[']).count();
    let closes = json.matches(['}', ']']).count();
    if opens != closes {
        return Err(format!("unbalanced brackets: {opens} open, {closes} close"));
    }
    if !json.contains("\"schema\": \"xbench.xprof/1\"") {
        return Err("schema tag is not xbench.xprof/1".to_string());
    }
    Ok(())
}

fn main() {
    let opts = parse_opts();
    let iters = if opts.quick { 40 } else { LATENCY_ITERS };

    let mut folded = String::new();
    let mut md = String::new();
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"xbench.xprof/1\",\n");
    let _ = writeln!(json, "  \"quick\": {},", opts.quick);
    let _ = writeln!(json, "  \"iters\": {iters},");
    json.push_str("  \"stacks\": [\n");

    md.push_str("# Where the microseconds go\n\n");
    let _ = writeln!(
        md,
        "Null-RPC round trips, {iters} calls per stack, per-layer cost \
         attribution from the xtrace ledger. Every table sums to the \
         stack's round-trip latency exactly.\n"
    );

    for (si, stack) in ALL_RPC_STACKS.iter().enumerate() {
        let tr: TracedLatency = rpc_latency_traced(stack, iters);
        let client_sum = tr.breakdown.host_total(tr.client);
        let conserved = client_sum == tr.window_ns;
        // Non-interference with the goldens: the traced run must measure
        // the same virtual time the untraced tables print.
        let untraced = rpc_latency_iters(stack, iters);
        eprintln!(
            "{:>14}: {:>9} ns/call, client ledger {} ns / window {} ns ({})",
            stack.name,
            tr.latency_ns,
            client_sum,
            tr.window_ns,
            if conserved { "conserved" } else { "LEAK" }
        );
        assert!(
            conserved,
            "{}: ledger leak — client buckets sum to {client_sum} ns, window is {} ns",
            stack.name, tr.window_ns
        );
        assert_eq!(
            tr.latency_ns, untraced,
            "{}: tracing perturbed the measured latency",
            stack.name
        );

        // --- folded stacks, rooted at the stack name ---
        for line in &tr.folded {
            let _ = writeln!(folded, "{};{line}", stack.name);
        }

        // --- markdown table: client-host buckets, biggest first ---
        let _ = writeln!(
            md,
            "## {} — {} ns per null call\n",
            stack.name, tr.latency_ns
        );
        md.push_str("| layer | class | ns/call | % of round trip |\n");
        md.push_str("|---|---|---:|---:|\n");
        let mut rows: Vec<_> = tr
            .breakdown
            .entries
            .iter()
            .filter(|e| e.host == tr.client)
            .collect();
        rows.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.proto.cmp(&b.proto)));
        for e in rows {
            let _ = writeln!(
                md,
                "| {} | {} | {:.1} | {:.2} |",
                e.proto,
                e.class.as_str(),
                e.ns as f64 / iters as f64,
                100.0 * e.ns as f64 / tr.window_ns as f64
            );
        }
        md.push('\n');

        // --- JSON ---
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"stack\": {},", js(stack.name));
        let _ = writeln!(json, "      \"latency_ns\": {},", tr.latency_ns);
        let _ = writeln!(json, "      \"window_ns\": {},", tr.window_ns);
        let _ = writeln!(json, "      \"client_sum_ns\": {client_sum},");
        let _ = writeln!(json, "      \"conserved\": {conserved},");
        json.push_str("      \"layers\": [\n");
        let n = tr.breakdown.entries.len();
        for (i, e) in tr.breakdown.entries.iter().enumerate() {
            let _ = writeln!(
                json,
                "        {{\"host\": {}, \"layer\": {}, \"class\": {}, \"ns\": {}}}{}",
                e.host.0,
                js(&e.proto),
                js(e.class.as_str()),
                e.ns,
                if i + 1 < n { "," } else { "" }
            );
        }
        json.push_str("      ]\n");
        let _ = writeln!(
            json,
            "    }}{}",
            if si + 1 < ALL_RPC_STACKS.len() {
                ","
            } else {
                ""
            }
        );
    }
    json.push_str("  ]\n}\n");

    if let Err(e) = validate(&json) {
        eprintln!("BENCH_xprof.json failed schema validation: {e}");
        std::process::exit(1);
    }
    std::fs::create_dir_all(&opts.out_dir).expect("create --out-dir");
    let fold_path = opts.out_dir.join("XPROF.folded");
    let md_path = opts.out_dir.join("XPROF.md");
    let json_path = opts.out_dir.join("BENCH_xprof.json");
    std::fs::write(&fold_path, &folded).expect("write XPROF.folded");
    std::fs::write(&md_path, &md).expect("write XPROF.md");
    std::fs::write(&json_path, &json).expect("write BENCH_xprof.json");
    eprintln!(
        "wrote {}, {}, {}",
        fold_path.display(),
        md_path.display(),
        json_path.display()
    );
}

/// Untraced latency at an arbitrary iteration count (the library's
/// [`rpc_latency`] is fixed at [`LATENCY_ITERS`]; quick mode uses fewer).
fn rpc_latency_iters(stack: &xrpc::stacks::StackDef, iters: usize) -> u64 {
    if iters == LATENCY_ITERS {
        return rpc_latency(stack);
    }
    use parking_lot::Mutex;
    use std::sync::Arc;
    use xbench::{rpc_rig, WARMUP_ITERS};
    use xkernel::sim::Mode;
    use xrpc::procs::NULL_PROC;
    let tb = rpc_rig(stack, Mode::Scheduled);
    let server_ip = tb.server_ip;
    let entry = stack.entry;
    let out = Arc::new(Mutex::new(0u64));
    let o2 = Arc::clone(&out);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        for _ in 0..WARMUP_ITERS {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).unwrap();
        }
        let t0 = ctx.now();
        for _ in 0..iters {
            xrpc::call(ctx, &k, entry, server_ip, NULL_PROC, Vec::new()).unwrap();
        }
        *o2.lock() = (ctx.now() - t0) / iters as u64;
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0, "latency run must drain");
    let v = *out.lock();
    v
}
