//! Table III — Cost of individual RPC layers: latency of each prefix of the
//! SELECT-CHANNEL-FRAGMENT-VIP stack, and the per-layer increments.

use xbench::{ms, pinger_latency, print_row, print_table_header, rpc_latency};
use xrpc::stacks::{L_RPC_VIP, TABLE3_STACKS};

fn main() {
    print_table_header(
        "Table III: Cost of Individual RPC Layers (paper value in parentheses)",
        &[
            "Configuration",
            "Latency (msec)",
            "Incremental (msec/layer)",
        ],
    );
    let paper_lat = ["1.12", "1.33", "1.82", "1.93"];
    let paper_inc = ["NA", "0.21", "0.49", "0.11"];
    let mut prev: Option<u64> = None;
    for (i, (name, graph, lower)) in TABLE3_STACKS.iter().enumerate() {
        let lat = if *lower == "select" {
            // The full stack is a real RPC; measure it exactly as Table II.
            rpc_latency(&L_RPC_VIP)
        } else {
            pinger_latency(graph, lower)
        };
        let inc = match prev {
            None => "NA".to_string(),
            Some(p) => format!("{} ({})", ms(lat.saturating_sub(p)), paper_inc[i]),
        };
        print_row(&[
            name.to_string(),
            format!("{} ({})", ms(lat), paper_lat[i]),
            inc,
        ]);
        prev = Some(lat);
    }
    println!();
}
