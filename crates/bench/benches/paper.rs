//! Real-CPU criterion benchmarks for every configuration in the paper's
//! evaluation.
//!
//! These run over the inline-synchronous network: a whole RPC round trip is
//! one call chain on one thread, with no scheduler and no virtual time, so
//! criterion measures the *actual* CPU cost of each protocol path on
//! today's hardware. Absolute numbers are of course thousands of times
//! smaller than the paper's Sun 3/75 milliseconds; what must reproduce is
//! the *shape* — who is cheaper than whom, and by roughly what factor.
//! The virtual-time binaries (`table1`..`fig3`, `ablations`, `intro`)
//! report the calibrated millisecond-scale results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use inet::testbed::{two_hosts, TwoHosts};
use inet::with_concrete;
use xbench::registry;
use xkernel::msg::HeaderPolicy;
use xkernel::prelude::*;
use xkernel::sim::{Mode, SimConfig};
use xrpc::pinger::Pinger;
use xrpc::procs::{NULL_PROC, SINK_PROC};
use xrpc::stacks::{StackDef, ALL_RPC_STACKS, TABLE3_STACKS};

fn inline_rig(graph: &str) -> TwoHosts {
    two_hosts(SimConfig::inline_mode(), &registry(), graph).expect("testbed builds")
}

fn rpc_rig(stack: &StackDef) -> TwoHosts {
    let tb = inline_rig(stack.graph);
    xrpc::procs::register_standard(&tb.server, stack.entry).expect("procedures register");
    tb
}

/// Null-RPC latency for every full stack (Tables I and II).
fn bench_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency_null_rpc");
    for stack in &ALL_RPC_STACKS {
        let tb = rpc_rig(stack);
        let ctx = tb.sim.ctx(tb.client.host());
        let server_ip = tb.server_ip;
        let k = tb.client.clone();
        g.bench_function(stack.name, |b| {
            b.iter(|| xrpc::call(&ctx, &k, stack.entry, server_ip, NULL_PROC, Vec::new()).unwrap())
        });
    }
    g.finish();
}

/// 16 k-byte request / null reply (the throughput test shape) for the
/// monolithic and layered stacks (Tables I and II).
fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput_16k");
    g.throughput(Throughput::Bytes(16 * 1024));
    for stack in &ALL_RPC_STACKS {
        let tb = rpc_rig(stack);
        let ctx = tb.sim.ctx(tb.client.host());
        let server_ip = tb.server_ip;
        let k = tb.client.clone();
        let payload = vec![0xA5u8; 16 * 1024];
        g.bench_function(stack.name, |b| {
            b.iter(|| {
                xrpc::call(&ctx, &k, stack.entry, server_ip, SINK_PROC, payload.clone()).unwrap()
            })
        });
    }
    g.finish();
}

/// Table III: each prefix of the layered stack.
fn bench_layers(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3_layer_cost");
    for (name, graph, lower) in TABLE3_STACKS {
        if lower == "select" {
            // The full stack appears in latency_null_rpc; measure it here
            // too so the group is self-contained.
            let tb = rpc_rig(&xrpc::stacks::L_RPC_VIP);
            let ctx = tb.sim.ctx(tb.client.host());
            let server_ip = tb.server_ip;
            let k = tb.client.clone();
            g.bench_function(name, |b| {
                b.iter(|| xrpc::call(&ctx, &k, "select", server_ip, NULL_PROC, Vec::new()).unwrap())
            });
            continue;
        }
        // Pinger harness: client host 0, echo host 1.
        let sim = xkernel::sim::Sim::new(SimConfig::inline_mode());
        let net = simnet::SimNet::new(&sim);
        let lan = net.add_lan(simnet::LanConfig::default());
        let reg = registry();
        let mut kernels = Vec::new();
        for (i, ip) in ["10.0.0.1", "10.0.0.2"].iter().enumerate() {
            let k = Kernel::new(&sim, &format!("h{i}"));
            net.attach(&k, lan, "nic0", EthAddr::from_index(i as u16 + 1))
                .unwrap();
            let spec = format!(
                "{}{}pinger echo={} -> {lower}\n",
                inet::standard_graph("nic0", ip),
                graph,
                i
            );
            reg.build(&sim, &k, &spec).unwrap();
            kernels.push(k);
        }
        let ctx = sim.ctx(kernels[0].host());
        let server_ip = IpAddr::new(10, 0, 0, 2);
        let client = kernels[0].clone();
        g.bench_function(name, |b| {
            b.iter(|| {
                with_concrete::<Pinger, _>(&client, "pinger", |p| {
                    p.rtt(&ctx, server_ip, Vec::new()).unwrap()
                })
                .unwrap()
            })
        });
    }
    g.finish();
}

/// §5 buffer-management ablation: real allocation cost of the legacy
/// per-header scheme versus the pre-allocated headroom scheme.
fn bench_buffer_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_buffer_scheme");
    for (label, policy) in [
        ("headroom", HeaderPolicy::default()),
        ("alloc_per_header", HeaderPolicy::AllocPerHeader),
    ] {
        let cfg = SimConfig::inline_mode().with_policy(policy);
        let tb = two_hosts(cfg, &registry(), xrpc::stacks::L_RPC_VIP.graph).unwrap();
        xrpc::procs::register_standard(&tb.server, "select").unwrap();
        let ctx = tb.sim.ctx(tb.client.host());
        let server_ip = tb.server_ip;
        let k = tb.client.clone();
        g.bench_function(label, |b| {
            b.iter(|| xrpc::call(&ctx, &k, "select", server_ip, NULL_PROC, Vec::new()).unwrap())
        });
    }
    g.finish();
}

/// §5 layer-scaling ablation: null layers between SELECT and CHANNEL.
fn bench_layer_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_layer_scaling");
    for n in [0usize, 2, 4, 8] {
        let mut graph = String::from("vip -> ip eth arp\nfragment -> vip\nchannel -> fragment\n");
        let mut below = String::from("channel");
        for i in 0..n {
            graph.push_str(&format!("null{i}: null -> {below}\n"));
            below = format!("null{i}");
        }
        graph.push_str(&format!("select -> {below}\n"));
        let tb = inline_rig(&graph);
        xrpc::procs::register_standard(&tb.server, "select").unwrap();
        let ctx = tb.sim.ctx(tb.client.host());
        let server_ip = tb.server_ip;
        let k = tb.client.clone();
        g.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| xrpc::call(&ctx, &k, "select", server_ip, NULL_PROC, Vec::new()).unwrap())
        });
    }
    g.finish();
}

/// Raw message-machinery microbenchmarks backing the buffer ablation.
fn bench_message_ops(c: &mut Criterion) {
    use xkernel::msg::Message;
    let mut g = c.benchmark_group("message_ops");
    g.bench_function("push_pop_5_headers_headroom", |b| {
        b.iter(|| {
            let mut m = Message::from_user(vec![0u8; 64]);
            for _ in 0..5 {
                m.push_header(&[7u8; 16]);
            }
            for _ in 0..5 {
                let h = m.pop_header(16).unwrap();
                assert_eq!(h.len(), 16);
            }
            m
        })
    });
    g.bench_function("push_pop_5_headers_alloc", |b| {
        b.iter(|| {
            let mut m = Message::from_user_with(HeaderPolicy::AllocPerHeader, vec![0u8; 64]);
            for _ in 0..5 {
                m.push_header(&[7u8; 16]);
            }
            for _ in 0..5 {
                let h = m.pop_header(16).unwrap();
                assert_eq!(h.len(), 16);
            }
            m
        })
    });
    g.bench_function("split_16k_into_fragments", |b| {
        let base = Message::from_user(vec![0u8; 16 * 1024]);
        b.iter(|| {
            let mut m = base.clone();
            let mut frags = Vec::with_capacity(12);
            while m.len() > 1460 {
                let rest = m.split_off(1460).unwrap();
                frags.push(std::mem::replace(&mut m, rest));
            }
            frags.push(m);
            frags
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(60)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_latency, bench_throughput, bench_layers,
              bench_buffer_schemes, bench_layer_scaling, bench_message_ops
}
criterion_main!(benches);

// Silence the unused-import lint when criterion's Mode isn't referenced.
#[allow(dead_code)]
fn _mode_used(_: Mode) {}
