//! Psync behaviour: partial-order delivery, context blocking, duplicate
//! suppression, and — the paper's point — reuse of FRAGMENT for large
//! conversation messages.

use std::sync::Arc;

use parking_lot::Mutex;

use inet::testbed::{base_registry, lan_hosts, Lan};
use inet::with_concrete;
use psync::{Conversation, Psync};
use simnet::fault::{FaultDecision, FaultPlan};
use xkernel::graph::ProtocolRegistry;
use xkernel::prelude::*;
use xkernel::sim::SimConfig;

const RECV_TIMEOUT: u64 = 3_000_000_000;

fn registry() -> ProtocolRegistry {
    let mut reg = base_registry();
    xrpc::register_ctors(&mut reg);
    psync::register_ctors(&mut reg);
    reg
}

fn conv_of(rig: &Lan, host: usize, id: u32, peers: Vec<IpAddr>) -> Arc<Conversation> {
    let ctx = rig.sim.ctx(rig.kernels[host].host());
    with_concrete::<Psync, _>(&rig.kernels[host], "psync", |p| {
        p.open_conv(&ctx, id, peers)
    })
    .unwrap()
}

#[test]
fn two_party_exchange_with_context() {
    let rig = lan_hosts(
        SimConfig::scheduled(),
        &registry(),
        "vip -> ip eth arp\npsync -> vip\n",
        2,
    )
    .unwrap();
    let (a_ip, b_ip) = (rig.ip_of(0), rig.ip_of(1));
    let conv_a = conv_of(&rig, 0, 1, vec![b_ip]);
    let conv_b = conv_of(&rig, 1, 1, vec![a_ip]);

    let ca = Arc::clone(&conv_a);
    let h0 = rig.kernels[0].host();
    rig.sim.spawn(h0, move |ctx| {
        let m1 = ca.send(ctx, b"question".to_vec()).unwrap();
        // Await the reply and check it names m1 as context.
        let reply = ca.receive(ctx, RECV_TIMEOUT).unwrap();
        assert_eq!(reply.data, b"answer");
        assert_eq!(reply.deps, vec![m1], "reply sent in the question's context");
    });
    let cb = Arc::clone(&conv_b);
    let h1 = rig.kernels[1].host();
    rig.sim.spawn(h1, move |ctx| {
        let q = cb.receive(ctx, RECV_TIMEOUT).unwrap();
        assert_eq!(q.data, b"question");
        cb.send(ctx, b"answer".to_vec()).unwrap();
    });
    let r = rig.sim.run_until_idle();
    assert_eq!(r.blocked, 0);
}

#[test]
fn partial_order_survives_reordering() {
    // Three hosts. A sends m1 to B and C; B replies m2 (context: m1).
    // The copy of m1 travelling A→C is delayed 50 ms, so C *receives*
    // m2 first — but must *deliver* m1 before m2.
    let rig = lan_hosts(
        SimConfig::scheduled(),
        &registry(),
        "vip -> ip eth arp\npsync -> vip\n",
        3,
    )
    .unwrap();
    let (a_ip, b_ip, c_ip) = (rig.ip_of(0), rig.ip_of(1), rig.ip_of(2));
    let conv_a = conv_of(&rig, 0, 5, vec![b_ip, c_ip]);
    let conv_b = conv_of(&rig, 1, 5, vec![a_ip, c_ip]);
    let conv_c = conv_of(&rig, 2, 5, vec![a_ip, b_ip]);

    // Delay frames from A (eth 1) to C (eth 3).
    let a_eth = EthAddr::from_index(1).0;
    let c_eth = EthAddr::from_index(3).0;
    rig.net.set_faults(
        rig.lan,
        FaultPlan {
            custom: Some(Arc::new(move |_, frame| {
                if frame.len() >= 12 && frame[0..6] == c_eth && frame[6..12] == a_eth {
                    FaultDecision::Delay(50_000_000)
                } else {
                    FaultDecision::Deliver
                }
            })),
            ..FaultPlan::default()
        },
    );

    let delivered: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));

    let ca = Arc::clone(&conv_a);
    rig.sim.spawn(rig.kernels[0].host(), move |ctx| {
        ca.send(ctx, b"m1".to_vec()).unwrap();
    });
    let cb = Arc::clone(&conv_b);
    rig.sim.spawn(rig.kernels[1].host(), move |ctx| {
        let m1 = cb.receive(ctx, RECV_TIMEOUT).unwrap();
        assert_eq!(m1.data, b"m1");
        cb.send(ctx, b"m2".to_vec()).unwrap();
    });
    let cc = Arc::clone(&conv_c);
    let d2 = Arc::clone(&delivered);
    rig.sim.spawn(rig.kernels[2].host(), move |ctx| {
        let first = cc.receive(ctx, RECV_TIMEOUT).unwrap();
        let second = cc.receive(ctx, RECV_TIMEOUT).unwrap();
        d2.lock().push(first.data);
        d2.lock().push(second.data);
        assert_eq!(second.deps, vec![first.id], "context chain intact");
    });
    let r = rig.sim.run_until_idle();
    assert_eq!(r.blocked, 0);
    assert_eq!(
        *delivered.lock(),
        vec![b"m1".to_vec(), b"m2".to_vec()],
        "m1 delivered before the message sent in its context"
    );
}

#[test]
fn message_blocks_until_context_arrives() {
    // Same topology, but A→C's m1 is *dropped*. C holds m2 forever (it is
    // observable in waiting_on_context) and never mis-delivers it.
    let rig = lan_hosts(
        SimConfig::scheduled(),
        &registry(),
        "vip -> ip eth arp\npsync -> vip\n",
        3,
    )
    .unwrap();
    let (a_ip, b_ip, c_ip) = (rig.ip_of(0), rig.ip_of(1), rig.ip_of(2));
    let conv_a = conv_of(&rig, 0, 5, vec![b_ip, c_ip]);
    let conv_b = conv_of(&rig, 1, 5, vec![a_ip, c_ip]);
    let conv_c = conv_of(&rig, 2, 5, vec![a_ip, b_ip]);

    let a_eth = EthAddr::from_index(1).0;
    let c_eth = EthAddr::from_index(3).0;
    rig.net.set_faults(
        rig.lan,
        FaultPlan {
            custom: Some(Arc::new(move |_, frame| {
                if frame.len() >= 12 && frame[0..6] == c_eth && frame[6..12] == a_eth {
                    FaultDecision::Drop
                } else {
                    FaultDecision::Deliver
                }
            })),
            ..FaultPlan::default()
        },
    );

    let ca = Arc::clone(&conv_a);
    rig.sim.spawn(rig.kernels[0].host(), move |ctx| {
        ca.send(ctx, b"m1".to_vec()).unwrap();
    });
    let cb = Arc::clone(&conv_b);
    rig.sim.spawn(rig.kernels[1].host(), move |ctx| {
        cb.receive(ctx, RECV_TIMEOUT).unwrap();
        cb.send(ctx, b"m2".to_vec()).unwrap();
    });
    let cc = Arc::clone(&conv_c);
    rig.sim.spawn(rig.kernels[2].host(), move |ctx| {
        // m2 arrives but must never be delivered without m1.
        let r = cc.receive(ctx, 500_000_000);
        assert!(matches!(r, Err(XError::Timeout(_))));
    });
    rig.sim.run_until_idle();
    assert_eq!(
        conv_c.waiting_on_context(),
        1,
        "m2 parked behind missing m1"
    );
    assert_eq!(conv_c.backlog(), 0);
}

#[test]
fn large_messages_reuse_fragment() {
    // psync -> fragment -> vip: a 12 k message rides the same bulk-transfer
    // layer as layered RPC.
    let rig = lan_hosts(
        SimConfig::scheduled(),
        &registry(),
        "vip -> ip eth arp\nfragment -> vip\npsync -> fragment\n",
        2,
    )
    .unwrap();
    let (a_ip, b_ip) = (rig.ip_of(0), rig.ip_of(1));
    let conv_a = conv_of(&rig, 0, 2, vec![b_ip]);
    let conv_b = conv_of(&rig, 1, 2, vec![a_ip]);
    let big: Vec<u8> = (0..12_000).map(|i| (i % 251) as u8).collect();
    let payload = big.clone();
    let ca = Arc::clone(&conv_a);
    rig.sim.spawn(rig.kernels[0].host(), move |ctx| {
        ca.send(ctx, payload).unwrap();
    });
    let got: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let g2 = Arc::clone(&got);
    let cb = Arc::clone(&conv_b);
    rig.sim.spawn(rig.kernels[1].host(), move |ctx| {
        *g2.lock() = cb.receive(ctx, RECV_TIMEOUT).unwrap().data;
    });
    rig.sim.run_until_idle();
    assert_eq!(*got.lock(), big);
    // The sender's FRAGMENT layer really carried it.
    with_concrete::<xrpc::fragment::Fragment, _>(&rig.kernels[0], "fragment", |f| {
        let st = f.stats();
        assert_eq!(st.messages_sent, 1);
        assert!(st.fragments_sent >= 8, "12k needs ≥8 fragments");
    })
    .unwrap();
}

#[test]
fn oversized_message_without_fragment_is_rejected() {
    // psync directly over VIP cannot move more than one frame — the reason
    // FRAGMENT exists as a reusable layer.
    let rig = lan_hosts(
        SimConfig::scheduled(),
        &registry(),
        "vip -> ip eth arp\npsync -> vip\n",
        2,
    )
    .unwrap();
    let b_ip = rig.ip_of(1);
    let conv_a = conv_of(&rig, 0, 3, vec![b_ip]);
    let err: Arc<Mutex<Option<XError>>> = Arc::new(Mutex::new(None));
    let e2 = Arc::clone(&err);
    let ca = Arc::clone(&conv_a);
    rig.sim.spawn(rig.kernels[0].host(), move |ctx| {
        *e2.lock() = ca.send(ctx, vec![0u8; 12_000]).err();
    });
    rig.sim.run_until_idle();
    assert!(matches!(*err.lock(), Some(XError::TooBig { .. })));
}

#[test]
fn duplicates_are_suppressed() {
    let rig = lan_hosts(
        SimConfig::scheduled(),
        &registry(),
        "vip -> ip eth arp\npsync -> vip\n",
        2,
    )
    .unwrap();
    rig.net.set_faults(
        rig.lan,
        FaultPlan {
            dup_per_mille: 1000,
            ..FaultPlan::default()
        },
    );
    let (a_ip, b_ip) = (rig.ip_of(0), rig.ip_of(1));
    let conv_a = conv_of(&rig, 0, 4, vec![b_ip]);
    let conv_b = conv_of(&rig, 1, 4, vec![a_ip]);
    let ca = Arc::clone(&conv_a);
    rig.sim.spawn(rig.kernels[0].host(), move |ctx| {
        for i in 0..5u8 {
            ca.send(ctx, vec![i]).unwrap();
        }
    });
    let seen: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    let cb = Arc::clone(&conv_b);
    rig.sim.spawn(rig.kernels[1].host(), move |ctx| {
        for _ in 0..5 {
            s2.lock()
                .push(cb.receive(ctx, RECV_TIMEOUT).unwrap().data[0]);
        }
        // No sixth message may ever be delivered.
        assert!(cb.receive(ctx, 200_000_000).is_err());
    });
    let r = rig.sim.run_until_idle();
    assert_eq!(r.blocked, 0);
    assert_eq!(*seen.lock(), vec![0, 1, 2, 3, 4]);
}
