//! # psync — a minimal Psync conversation protocol
//!
//! Psync (Peterson, Buchholz, Schlichting 1989) provides many-to-many IPC
//! that *preserves the partial order of exchanged messages*: each message
//! carries the ids of the messages it was sent in the context of, and a
//! receiver delivers a message only after everything in its context.
//!
//! Two roles in this reproduction:
//!
//! 1. It is the paper's motivating *reuse* customer for FRAGMENT: "Psync
//!    accommodates messages of up to 16k" and "could use a protocol that
//!    sends large messages, \[but\] does not want at most once RPC semantics"
//!    — which is exactly why FRAGMENT was given unreliable-but-persistent
//!    semantics. Compose `psync -> fragment -> vip` and large conversation
//!    messages ride the same bulk-transfer layer as layered RPC.
//! 2. It demonstrates virtual protocols serving multiple upper protocols:
//!    `psync -> vip` dynamically deletes IP under Psync on a local wire,
//!    just as Figure 2 shows.
//!
//! This is a deliberately minimal Psync: conversations with a static
//! participant set, context tracking, and partial-order delivery. The full
//! protocol's view management and failure handling are out of scope (the
//! RPC paper uses none of them).

#![warn(missing_docs)]

use std::any::Any;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use xkernel::graph::{GraphArgs, ProtocolRegistry};
use xkernel::prelude::*;
use xrpc::protnum::rel_proto_num;

/// A message identity: (sender address, sender-local counter).
pub type MsgId = (u32, u32);

/// A delivered conversation message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PsyncMsg {
    /// Message identity.
    pub id: MsgId,
    /// The context this message was sent in (ids it depends on).
    pub deps: Vec<MsgId>,
    /// Sender.
    pub from: IpAddr,
    /// Payload.
    pub data: Vec<u8>,
}

#[derive(Clone)]
struct ConvState {
    next_local: u32,
    delivered: HashSet<MsgId>,
    leaves: Vec<MsgId>,
    pending: Vec<PsyncMsg>,
    inbox: VecDeque<PsyncMsg>,
}

/// One end of a conversation: send into the context graph, receive in
/// partial order.
pub struct Conversation {
    parent: Arc<Psync>,
    id: u32,
    peers: Vec<IpAddr>,
    st: Mutex<ConvState>,
    avail: SharedSema,
}

impl Conversation {
    /// Sends `data` to every other participant, in the context of all
    /// currently-known leaves. Returns the new message's id.
    pub fn send(&self, ctx: &Ctx, data: Vec<u8>) -> XResult<MsgId> {
        let my_ip = self.parent.my_ip();
        let (id, deps) = {
            let mut st = self.st.lock();
            st.next_local += 1;
            let id = (my_ip.0, st.next_local);
            let deps = std::mem::replace(&mut st.leaves, vec![id]);
            st.delivered.insert(id);
            (id, deps)
        };
        let wire = encode(self.id, my_ip, id.1, &deps, &data);
        for peer in &self.peers {
            let sess = self.parent.lower_for(ctx, *peer)?;
            ctx.charge_layer_call();
            sess.push(ctx, ctx.msg(wire.clone()))?;
        }
        Ok(id)
    }

    /// Receives the next deliverable message, waiting up to `timeout_ns`.
    pub fn receive(&self, ctx: &Ctx, timeout_ns: u64) -> XResult<PsyncMsg> {
        loop {
            if let Some(m) = self.st.lock().inbox.pop_front() {
                return Ok(m);
            }
            if !self.avail.p_timeout(ctx, timeout_ns) {
                return Err(XError::Timeout(format!(
                    "psync conversation {} receive",
                    self.id
                )));
            }
        }
    }

    /// Messages delivered so far but not yet received by the application.
    pub fn backlog(&self) -> usize {
        self.st.lock().inbox.len()
    }

    /// Messages stuck waiting for their context (tests).
    pub fn waiting_on_context(&self) -> usize {
        self.st.lock().pending.len()
    }

    /// The current context leaves (tests).
    pub fn leaves(&self) -> Vec<MsgId> {
        self.st.lock().leaves.clone()
    }

    fn message_in(&self, ctx: &Ctx, msg: PsyncMsg) {
        let mut st = self.st.lock();
        if st.delivered.contains(&msg.id) {
            return; // Duplicate (FRAGMENT may duplicate; that's fine).
        }
        st.pending.push(msg);
        // Deliver everything whose context is satisfied, repeatedly.
        let mut delivered_any = true;
        while delivered_any {
            delivered_any = false;
            let mut i = 0;
            while i < st.pending.len() {
                let ready = st.pending[i].deps.iter().all(|d| st.delivered.contains(d));
                if ready {
                    let m = st.pending.remove(i);
                    st.delivered.insert(m.id);
                    st.leaves.retain(|l| !m.deps.contains(l));
                    st.leaves.push(m.id);
                    st.inbox.push_back(m);
                    delivered_any = true;
                    drop(st);
                    self.avail.v(ctx);
                    st = self.st.lock();
                } else {
                    i += 1;
                }
            }
        }
    }
}

/// Fixed wire header prefix: conv(4) sender(4) counter(4) ndeps(2).
const PSYNC_FIXED_HDR: usize = 14;

fn encode(conv: u32, sender: IpAddr, counter: u32, deps: &[MsgId], data: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::with_capacity(PSYNC_FIXED_HDR + deps.len() * 8 + data.len());
    w.u32(conv).ip(sender).u32(counter).u16(deps.len() as u16);
    for (ip, ctr) in deps {
        w.u32(*ip).u32(*ctr);
    }
    w.bytes(data);
    w.finish()
}

/// The Psync protocol object.
pub struct Psync {
    weak_self: Weak<Psync>,
    me: ProtoId,
    lower: ProtoId,
    lower_name: OnceLock<&'static str>,
    my_ip: OnceLock<IpAddr>,
    convs: Mutex<HashMap<u32, Arc<Conversation>>>,
    lowers: Mutex<HashMap<u32, SessionRef>>,
}

impl Psync {
    /// Creates Psync above `lower` (FRAGMENT, VIP, or IP).
    pub fn new(me: ProtoId, lower: ProtoId) -> Arc<Psync> {
        Arc::new_cyclic(|weak_self| Psync {
            weak_self: weak_self.clone(),
            me,
            lower,
            lower_name: OnceLock::new(),
            my_ip: OnceLock::new(),
            convs: Mutex::new(HashMap::new()),
            lowers: Mutex::new(HashMap::new()),
        })
    }

    fn self_arc(&self) -> Arc<Psync> {
        self.weak_self.upgrade().expect("psync alive")
    }

    fn my_ip(&self) -> IpAddr {
        *self.my_ip.get().expect("psync booted")
    }

    fn lower_for(&self, ctx: &Ctx, peer: IpAddr) -> XResult<SessionRef> {
        if let Some(s) = self.lowers.lock().get(&peer.0) {
            return Ok(Arc::clone(s));
        }
        let lname = self.lower_name.get().expect("psync booted");
        let parts = ParticipantSet::pair(
            Participant::proto(rel_proto_num(lname, "psync")?),
            Participant::host(peer),
        );
        let s = ctx.kernel().open(ctx, self.lower, self.me, &parts)?;
        self.lowers.lock().insert(peer.0, Arc::clone(&s));
        Ok(s)
    }

    /// Opens (or joins) conversation `id` with the given other
    /// participants. Every participant must open the same id.
    pub fn open_conv(&self, _ctx: &Ctx, id: u32, peers: Vec<IpAddr>) -> Arc<Conversation> {
        let mut convs = self.convs.lock();
        Arc::clone(convs.entry(id).or_insert_with(|| {
            Arc::new(Conversation {
                parent: self.self_arc(),
                id,
                peers,
                st: Mutex::new(ConvState {
                    next_local: 0,
                    delivered: HashSet::new(),
                    leaves: Vec::new(),
                    pending: Vec::new(),
                    inbox: VecDeque::new(),
                }),
                avail: SharedSema::new(0),
            })
        }))
    }
}

impl Protocol for Psync {
    fn contract(&self) -> xkernel::lint::ProtoContract {
        psync_contract()
    }

    fn name(&self) -> &'static str {
        "psync"
    }

    fn id(&self) -> ProtoId {
        self.me
    }

    fn boot(&self, ctx: &Ctx) -> XResult<()> {
        let kernel = ctx.kernel();
        let lower = kernel.proto(self.lower)?;
        self.lower_name
            .set(lower.name())
            .map_err(|_| XError::Config("psync double boot".into()))?;
        let my_ip = lower.control(ctx, &ControlOp::GetMyHost)?.ip()?;
        self.my_ip
            .set(my_ip)
            .map_err(|_| XError::Config("psync double boot".into()))?;
        let parts =
            ParticipantSet::local(Participant::proto(rel_proto_num(lower.name(), "psync")?));
        kernel.open_enable(ctx, self.lower, self.me, &parts)
    }

    fn open(&self, _ctx: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<SessionRef> {
        Err(XError::Unsupported("psync: use open_conv()"))
    }

    fn open_enable(&self, _ctx: &Ctx, _u: ProtoId, _p: &ParticipantSet) -> XResult<()> {
        Err(XError::Unsupported("psync delivers through Conversation"))
    }

    fn demux(&self, ctx: &Ctx, _lls: &SessionRef, mut msg: Message) -> XResult<()> {
        let fixed = ctx.pop_header(&mut msg, PSYNC_FIXED_HDR)?;
        let mut r = WireReader::new(&fixed, "psync");
        let conv = r.u32()?;
        let sender = r.ip()?;
        let counter = r.u32()?;
        let ndeps = r.u16()? as usize;
        drop(fixed);
        let deps_bytes = ctx.pop_header(&mut msg, ndeps * 8)?;
        let mut r = WireReader::new(&deps_bytes, "psync deps");
        let mut deps = Vec::with_capacity(ndeps);
        for _ in 0..ndeps {
            deps.push((r.u32()?, r.u32()?));
        }
        drop(deps_bytes);
        ctx.charge_class(OpClass::Demux, ctx.cost().demux_lookup);
        let conversation = self.convs.lock().get(&conv).cloned();
        match conversation {
            Some(c) => {
                c.message_in(
                    ctx,
                    PsyncMsg {
                        id: (sender.0, counter),
                        deps,
                        from: sender,
                        data: msg.to_vec(),
                    },
                );
                Ok(())
            }
            None => {
                ctx.trace_note("no such conversation");
                Ok(())
            }
        }
    }

    fn control(&self, _ctx: &Ctx, op: &ControlOp) -> XResult<ControlRes> {
        match op {
            // Psync sends up to 16k and relies on the layer below (FRAGMENT)
            // to move it — the paper's reuse story.
            ControlOp::GetMaxMsgSize => Ok(ControlRes::Size(1500)),
            _ => Err(XError::Unsupported("psync control")),
        }
    }

    // Conversations carry durable state: the context graph, an inbox the
    // application may not have drained, and the availability semaphore's
    // count (which may be positive at quiescence with a backlog — no
    // assertion that it is zero).
    fn snap(&self, _ctx: &Ctx) -> Option<SnapBlob> {
        let convs = self
            .convs
            .lock()
            .iter()
            .map(|(k, c)| {
                (
                    *k,
                    ConvSnap {
                        conv: Arc::clone(c),
                        st: c.st.lock().clone(),
                        avail: c.avail.snap_state(),
                    },
                )
            })
            .collect();
        Some(Arc::new(PsyncSnap {
            convs,
            lowers: self.lowers.lock().clone(),
        }))
    }

    fn restore_snap(&self, _ctx: &Ctx, blob: &SnapBlob) -> XResult<()> {
        let s = snap_downcast::<PsyncSnap>(blob, "psync")?;
        {
            let mut convs = self.convs.lock();
            convs.clear();
            for (k, cs) in &s.convs {
                *cs.conv.st.lock() = cs.st.clone();
                cs.conv.avail.restore_state(cs.avail);
                convs.insert(*k, Arc::clone(&cs.conv));
            }
        }
        *self.lowers.lock() = s.lowers.clone();
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct ConvSnap {
    conv: Arc<Conversation>,
    st: ConvState,
    avail: (i64, u64),
}

struct PsyncSnap {
    convs: HashMap<u32, ConvSnap>,
    lowers: HashMap<u32, SessionRef>,
}

/// Lint contract for Psync: conversation IPC over an internet-like
/// delivery layer. The header is 14 fixed bytes plus 8 per context-graph
/// dependency; 64 bounds the dependency sets this suite produces. Sends
/// block the shepherd on the availability semaphore, V'd from demux.
pub fn psync_contract() -> xkernel::lint::ProtoContract {
    use xkernel::lint::{AddrKind, BlockPoint, ProtoContract, SemaContract};
    ProtoContract::new("psync", AddrKind::Rpc)
        .lower(&[AddrKind::Internet])
        .header(64)
        .demux_key_bits(32)
        .sema(SemaContract {
            acquires_pool: false,
            awaits_reply: true,
            wakes_from_demux: true,
        })
        .blocks(&[BlockPoint::Sema, BlockPoint::Timer])
        .locks(&["sched", "hosts"])
        .clears_slot_on_error() // receive timeout abandons the waiter entry
}

/// Registers `psync -> <fragment|vip|ip>` into the graph vocabulary.
pub fn register_ctors(reg: &mut ProtocolRegistry) {
    reg.add_contract(psync_contract());
    reg.add("psync", |a: &GraphArgs<'_>| {
        Ok(Psync::new(a.me, a.down(0)?) as ProtocolRef)
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encoding_roundtrips() {
        let deps = vec![(0x0a000001, 7), (0x0a000002, 3)];
        let v = encode(9, IpAddr::new(10, 0, 0, 3), 4, &deps, b"hello");
        let mut m = Message::from_wire(v);
        let fixed = m.pop_header(PSYNC_FIXED_HDR).unwrap();
        let mut r = WireReader::new(&fixed, "t");
        assert_eq!(r.u32().unwrap(), 9);
        assert_eq!(r.ip().unwrap(), IpAddr::new(10, 0, 0, 3));
        assert_eq!(r.u32().unwrap(), 4);
        assert_eq!(r.u16().unwrap(), 2);
        drop(fixed);
        let d = m.pop_header(16).unwrap();
        let mut r = WireReader::new(&d, "t");
        assert_eq!((r.u32().unwrap(), r.u32().unwrap()), deps[0]);
        assert_eq!((r.u32().unwrap(), r.u32().unwrap()), deps[1]);
        drop(d);
        assert_eq!(m.to_vec(), b"hello");
    }
}
