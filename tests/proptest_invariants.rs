//! Property-based tests over the workspace's core invariants: the message
//! rope, every wire codec, the Internet checksum, XDR, simulator
//! determinism, and at-most-once execution under randomized fault plans.

use proptest::prelude::*;

use xkernel::msg::{HeaderPolicy, Message};
use xkernel::prelude::*;
use xkernel::wire::internet_checksum;

// ---------------------------------------------------------------------------
// Message rope: model-based testing against a plain byte vector.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MsgOp {
    PushHeader(Vec<u8>),
    PopHeader(usize),
    SplitOffAndRejoin(usize),
    Truncate(usize),
    Append(Vec<u8>),
}

fn msg_op() -> impl Strategy<Value = MsgOp> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 1..40).prop_map(MsgOp::PushHeader),
        (1usize..40).prop_map(MsgOp::PopHeader),
        (0usize..5000).prop_map(MsgOp::SplitOffAndRejoin),
        (0usize..5000).prop_map(MsgOp::Truncate),
        proptest::collection::vec(any::<u8>(), 0..200).prop_map(MsgOp::Append),
    ]
}

fn apply(model: &mut Vec<u8>, msg: &mut Message, op: &MsgOp) {
    match op {
        MsgOp::PushHeader(h) => {
            msg.push_header(h);
            let mut m = h.clone();
            m.extend_from_slice(model);
            *model = m;
        }
        MsgOp::PopHeader(n) => {
            let r = msg.pop_header(*n);
            if *n <= model.len() {
                let bytes = r.expect("in-range pop succeeds");
                assert_eq!(&*bytes, &model[..*n]);
                drop(bytes);
                model.drain(..*n);
            } else {
                assert!(r.is_err(), "out-of-range pop must fail");
            }
        }
        MsgOp::SplitOffAndRejoin(at) => {
            if *at <= model.len() {
                let tail = msg.split_off(*at).expect("in-range split");
                msg.append(tail);
            } else {
                assert!(msg.split_off(*at).is_err());
            }
        }
        MsgOp::Truncate(n) => {
            msg.truncate(*n);
            model.truncate(*n);
        }
        MsgOp::Append(data) => {
            msg.append(Message::from_user(data.clone()));
            model.extend_from_slice(data);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn message_matches_byte_vector_model(
        initial in proptest::collection::vec(any::<u8>(), 0..2000),
        ops in proptest::collection::vec(msg_op(), 0..30),
        alloc_policy in any::<bool>(),
    ) {
        let policy = if alloc_policy {
            HeaderPolicy::AllocPerHeader
        } else {
            HeaderPolicy::default()
        };
        let mut model = initial.clone();
        let mut msg = Message::from_user_with(policy, initial);
        for op in &ops {
            apply(&mut model, &mut msg, op);
            prop_assert_eq!(msg.len(), model.len());
        }
        prop_assert_eq!(msg.to_vec(), model);
    }

    #[test]
    fn fragmentation_reassembly_identity(
        data in proptest::collection::vec(any::<u8>(), 1..20_000),
        frag_size in 1usize..2000,
    ) {
        let original = Message::from_user(data.clone());
        let mut rest = original.clone();
        let mut frags = Vec::new();
        while rest.len() > frag_size {
            let tail = rest.split_off(frag_size).unwrap();
            frags.push(std::mem::replace(&mut rest, tail));
        }
        frags.push(rest);
        for f in &frags {
            prop_assert!(f.len() <= frag_size);
        }
        let whole = Message::concat(frags);
        prop_assert_eq!(whole.to_vec(), data);
    }

    // -----------------------------------------------------------------------
    // Wire codecs.
    // -----------------------------------------------------------------------

    #[test]
    fn sprite_header_roundtrips(
        flags in any::<u16>(), clnt in any::<u32>(), srvr in any::<u32>(),
        channel in any::<u16>(), seq in any::<u32>(), num in any::<u16>(),
        mask in any::<u16>(), command in any::<u16>(), boot in any::<u32>(),
        d1 in any::<u16>(), off in any::<u16>(),
    ) {
        let h = xrpc::hdr::SpriteHdr {
            flags, clnt_host: IpAddr(clnt), srvr_host: IpAddr(srvr),
            channel, srvr_process: 0, sequence_num: seq, num_frags: num,
            frag_mask: mask, command, boot_id: boot, data1_sz: d1,
            data2_sz: 0, data1_offset: off, data2_offset: 0,
        };
        prop_assert_eq!(xrpc::hdr::SpriteHdr::decode(&h.encode()).unwrap(), h);
    }

    #[test]
    fn channel_and_fragment_headers_roundtrip(
        a in any::<u16>(), b in any::<u16>(), c in any::<u32>(),
        d in any::<u32>(), e in any::<u16>(), f in any::<u32>(),
        ip1 in any::<u32>(), ip2 in any::<u32>(), ty in any::<u8>(),
    ) {
        let ch = xrpc::hdr::ChannelHdr {
            flags: a, channel: b, protocol_num: c, sequence_num: d,
            error: e, boot_id: f,
        };
        prop_assert_eq!(xrpc::hdr::ChannelHdr::decode(&ch.encode()).unwrap(), ch);
        let fr = xrpc::hdr::FragmentHdr {
            typ: ty, clnt_host: IpAddr(ip1), srvr_host: IpAddr(ip2),
            protocol_num: c, sequence_num: d, num_frags: a, frag_mask: b,
            len: e,
        };
        prop_assert_eq!(xrpc::hdr::FragmentHdr::decode(&fr.encode()).unwrap(), fr);
    }

    #[test]
    fn ip_header_roundtrips_and_checksums(
        total in 20u16..4000, id in any::<u16>(), mf in any::<bool>(),
        off in 0u16..0x1fff, ttl in 1u8..64, proto in any::<u8>(),
        src in any::<u32>(), dst in any::<u32>(),
    ) {
        let h = inet::ip::IpHeader {
            total_len: total, id, more_frags: mf, frag_off: off, ttl, proto,
            src: IpAddr(src), dst: IpAddr(dst),
        };
        let bytes = h.encode();
        prop_assert_eq!(internet_checksum(&[&bytes]), 0, "self-verifying");
        prop_assert_eq!(inet::ip::IpHeader::decode(&bytes).unwrap(), h);
        // Any single-bit flip must be caught by the checksum.
        let mut corrupted = bytes.clone();
        corrupted[(id as usize) % 20] ^= 1 << (ttl % 8);
        prop_assert!(inet::ip::IpHeader::decode(&corrupted).is_err());
    }

    #[test]
    fn checksum_detects_any_single_bit_flip(
        mut data in proptest::collection::vec(any::<u8>(), 2..256),
        bit in any::<u16>(),
    ) {
        // One's-complement sums pair bytes, so verify-by-appending only
        // works on even-length data — which is why the protocols that use
        // it (IP/TCP headers, pseudo-headers) are all even-sized.
        if data.len() % 2 != 0 {
            data.pop();
        }
        let mut with_ck = data.clone();
        let ck = internet_checksum(&[&data]);
        with_ck.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(internet_checksum(&[&with_ck]), 0);
        let i = (bit as usize / 8) % data.len();
        let b = bit % 8;
        let mut flipped = with_ck.clone();
        flipped[i] ^= 1 << b;
        prop_assert_ne!(internet_checksum(&[&flipped]), 0);
    }

    #[test]
    fn xdr_roundtrips(
        a in any::<u32>(), b in any::<i32>(), c in any::<u64>(),
        s in "[a-zA-Z0-9 ]{0,40}",
        blob in proptest::collection::vec(any::<u8>(), 0..100),
    ) {
        let mut w = sunrpc::xdr::XdrWriter::new();
        w.u32(a).i32(b).u64(c).string(&s).opaque(&blob).bool(true);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len() % 4, 0);
        let mut r = sunrpc::xdr::XdrReader::new(&bytes);
        prop_assert_eq!(r.u32().unwrap(), a);
        prop_assert_eq!(r.i32().unwrap(), b);
        prop_assert_eq!(r.u64().unwrap(), c);
        prop_assert_eq!(r.string().unwrap(), s);
        prop_assert_eq!(r.opaque().unwrap(), &blob[..]);
        prop_assert!(r.bool().unwrap());
        prop_assert_eq!(r.remaining(), 0);
    }
}

// ---------------------------------------------------------------------------
// Scheduler journal: wire round-trip and total decoding.
// ---------------------------------------------------------------------------

fn journal_record() -> impl Strategy<Value = xkernel::journal::JournalRecord> {
    use xkernel::journal::JournalRecord;
    prop_oneof![
        (any::<u32>(), any::<u32>()).prop_map(|(n, pick)| JournalRecord::TiePick { n, pick }),
        (any::<u32>(), any::<u64>(), 1u8..5, any::<u64>()).prop_map(|(lan, index, kind, aux)| {
            JournalRecord::Fault {
                lan,
                index,
                kind,
                aux,
            }
        }),
        (any::<u32>(), 0u8..2, any::<u64>()).prop_map(|(host, kind, t)| JournalRecord::Boot {
            host,
            kind,
            t
        }),
    ]
}

fn journal() -> impl Strategy<Value = xkernel::journal::Journal> {
    (
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(journal_record(), 0..64),
    )
        .prop_map(|(seed, sched_hash, records)| xkernel::journal::Journal {
            version: xkernel::journal::JOURNAL_VERSION,
            seed,
            sched_hash,
            records,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn journal_encoding_roundtrips(j in journal()) {
        let bytes = j.encode();
        prop_assert_eq!(xkernel::journal::Journal::decode(&bytes).unwrap(), j);
    }

    #[test]
    fn truncated_journals_fail_cleanly(j in journal(), keep_per_mille in 0u32..1000) {
        // Any strict prefix decodes to a clean Truncated error — no panic,
        // no partial success.
        let bytes = j.encode();
        let cut = (bytes.len() as u64 * u64::from(keep_per_mille) / 1000) as usize;
        prop_assert_eq!(
            xkernel::journal::Journal::decode(&bytes[..cut]).unwrap_err(),
            xkernel::journal::JournalError::Truncated
        );
    }

    #[test]
    fn corrupt_journals_never_panic(
        j in journal(),
        flips in proptest::collection::vec((any::<u64>(), any::<u8>()), 1..8),
    ) {
        // Decoding is total: arbitrary byte corruption yields Ok (when the
        // flip lands in a value field) or a clean JournalError — never a
        // panic, never an out-of-bounds read.
        let mut bytes = j.encode();
        for (pos, mask) in flips {
            let at = (pos % bytes.len() as u64) as usize;
            bytes[at] ^= mask;
        }
        let _ = xkernel::journal::Journal::decode(&bytes);
    }
}

// ---------------------------------------------------------------------------
// Whole-system properties (fewer cases; each builds a simulation).
// ---------------------------------------------------------------------------

fn rpc_registry() -> xkernel::graph::ProtocolRegistry {
    let mut reg = inet::testbed::base_registry();
    xrpc::register_ctors(&mut reg);
    reg
}

/// Runs `calls` L_RPC invocations of a counting procedure under the given
/// seed/loss and returns (server executions, client completions).
fn run_at_most_once(seed: u64, loss_per_mille: u32, calls: u32) -> (u32, u32) {
    use std::sync::Arc;
    let cfg = xkernel::sim::SimConfig::scheduled().with_seed(seed);
    let tb = inet::testbed::two_hosts(cfg, &rpc_registry(), xrpc::stacks::L_RPC_VIP.graph)
        .expect("testbed");
    xrpc::procs::register_standard(&tb.server, "select").unwrap();
    let counter = Arc::new(parking_lot::Mutex::new(0u32));
    let c2 = Arc::clone(&counter);
    xrpc::serve(&tb.server, "select", 7, move |ctx, _| {
        *c2.lock() += 1;
        Ok(ctx.empty_msg())
    })
    .unwrap();
    // Warm ARP and the session caches on a clean wire, then inject faults:
    // the property under test is the RPC machinery's, not ARP's.
    let server_ip = tb.server_ip;
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        xrpc::call(
            ctx,
            &k,
            "select",
            server_ip,
            xrpc::procs::NULL_PROC,
            Vec::new(),
        )
        .unwrap();
    });
    let warm = tb.sim.run_until_idle();
    assert_eq!(warm.blocked, 0);
    tb.net
        .set_faults(tb.lan, simnet::fault::FaultPlan::lossy(loss_per_mille));
    let done = Arc::new(parking_lot::Mutex::new(0u32));
    let d2 = Arc::clone(&done);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        for _ in 0..calls {
            xrpc::call(ctx, &k, "select", server_ip, 7, vec![9]).unwrap();
            *d2.lock() += 1;
        }
    });
    let r = tb.sim.run_until_idle();
    assert_eq!(r.blocked, 0);
    let result = (*counter.lock(), *done.lock());
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn at_most_once_holds_for_any_seed_and_loss(
        seed in any::<u64>(),
        loss in 0u32..180,
    ) {
        let calls = 8;
        let (executed, completed) = run_at_most_once(seed, loss, calls);
        prop_assert_eq!(completed, calls);
        prop_assert_eq!(executed, calls,
            "seed {} loss {}: at-most-once must hold", seed, loss);
    }

    #[test]
    fn simulation_is_deterministic_per_seed(seed in any::<u64>()) {
        let a = run_at_most_once(seed, 120, 6);
        let b = run_at_most_once(seed, 120, 6);
        prop_assert_eq!(a, b, "same seed, same outcome");
    }
}
