//! §5's negative result, reproduced: "one would expect TCP to be able to
//! use VIP since VIP provides the same semantics as IP. This doesn't work
//! in practice, however, because TCP depends on the length field in the IP
//! header (the TCP header does not have a length field of its own) and TCP
//! computes a checksum that covers the IP header."
//!
//! With minimum-frame padding enabled on the wire (as on real Ethernet),
//! small TCP segments delivered over VIP's raw-Ethernet path carry trailing
//! pad bytes. Over IP, `total_len` trims them; over raw ETH nothing can,
//! the checksum fails, and the connection never establishes. The same
//! padded wire is harmless to every protocol designed with its own length
//! field (FRAGMENT's `len`, Sprite's `data1_sz`, UDP's `length`).

use std::sync::Arc;

use parking_lot::Mutex;

use inet::tcp::Tcp;
use inet::with_concrete;
use simnet::{LanConfig, SimNet};
use xkernel::prelude::*;
use xkernel::sim::{Sim, SimConfig};

fn registry() -> xkernel::graph::ProtocolRegistry {
    let mut reg = inet::testbed::base_registry();
    xrpc::register_ctors(&mut reg);
    reg
}

/// Two hosts on a padding Ethernet running the standard graph plus `extra`.
///
/// Builds with `build_unchecked`: the TCP-over-VIP spec below is
/// *deliberately* ill-formed — `xk-lint` rejects it statically (see
/// `tcp_over_vip_is_rejected_statically`), and this rig exists to show the
/// same composition also failing dynamically, the way the paper found it.
fn padded_rig(extra: &str) -> (Sim, SimNet, Vec<Arc<Kernel>>) {
    let sim = Sim::new(SimConfig::scheduled());
    let net = SimNet::new(&sim);
    let lan = net.add_lan(LanConfig {
        pad_frames: true,
        ..LanConfig::default()
    });
    let reg = registry();
    let mut kernels = Vec::new();
    for (i, ip) in ["10.0.0.1", "10.0.0.2"].iter().enumerate() {
        let k = Kernel::new(&sim, &format!("h{i}"));
        net.attach(&k, lan, "nic0", EthAddr::from_index(i as u16 + 1))
            .unwrap();
        let spec = format!("{}{extra}", inet::standard_graph("nic0", ip));
        reg.build_unchecked(&sim, &k, &spec).unwrap();
        kernels.push(k);
    }
    (sim, net, kernels)
}

#[test]
fn tcp_over_vip_is_rejected_statically() {
    // The linter catches the Section 5 composition error before anything
    // runs: build() (which lints) refuses the spec padded_rig builds only
    // via build_unchecked.
    let sim = Sim::new(SimConfig::scheduled());
    let net = SimNet::new(&sim);
    let lan = net.add_lan(LanConfig::default());
    let k = Kernel::new(&sim, "h");
    net.attach(&k, lan, "nic0", EthAddr::from_index(1)).unwrap();
    let spec = format!(
        "{}vip -> ip eth arp\ntcp -> vip\n",
        inet::standard_graph("nic0", "10.0.0.1")
    );
    let err = registry().build(&sim, &k, &spec).unwrap_err();
    let XError::Lint(diags) = err else {
        panic!("expected a lint rejection, got {err}");
    };
    let hit = diags
        .iter()
        .find(|d| d.rule == xkernel::lint::rules::STABLE_OVER_VIRTUAL)
        .expect("XK007 cites the stable-participant rule");
    assert_eq!(hit.severity, xkernel::lint::Severity::Error);
    assert_eq!(hit.instance, "tcp");
    assert!(hit.message.contains("stable participant"));
}

#[test]
fn tcp_works_over_ip_despite_frame_padding() {
    // Control case: IP's total_len strips the pad, so TCP is fine.
    let (sim, _net, kernels) = padded_rig("tcp -> ip\n");
    let server_ip = IpAddr::new(10, 0, 0, 2);
    let ok = Arc::new(Mutex::new(false));
    let o2 = Arc::clone(&ok);
    let server = Arc::clone(&kernels[1]);
    sim.spawn(server.host(), move |ctx| {
        with_concrete::<Tcp, _>(&ctx.kernel(), "tcp", |t| {
            let l = t.listen(80).unwrap();
            let conn = l.accept(ctx, 5_000_000_000).unwrap();
            let data = conn.recv(ctx, 64, 2_000_000_000).unwrap();
            assert_eq!(data, b"over ip");
        })
        .unwrap();
    });
    sim.spawn(kernels[0].host(), move |ctx| {
        with_concrete::<Tcp, _>(&ctx.kernel(), "tcp", |t| {
            let conn = t.connect(ctx, server_ip, 80).unwrap();
            conn.send(ctx, b"over ip").unwrap();
            *o2.lock() = true;
        })
        .unwrap();
    });
    let r = sim.run_until_idle();
    assert!(*ok.lock());
    assert_eq!(r.blocked, 0);
}

#[test]
fn tcp_cannot_establish_over_vip_raw_ethernet() {
    // The paper's finding: over VIP's raw-Ethernet path the padded SYN
    // fails TCP's checksum (no TCP length field to trim with), so the
    // handshake never completes.
    let (sim, _net, kernels) = padded_rig("vip -> ip eth arp\ntcp -> vip\n");
    let server_ip = IpAddr::new(10, 0, 0, 2);
    let outcome: Arc<Mutex<Option<XError>>> = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&outcome);
    let server = Arc::clone(&kernels[1]);
    sim.spawn(server.host(), move |ctx| {
        with_concrete::<Tcp, _>(&ctx.kernel(), "tcp", |t| {
            let l = t.listen(80).unwrap();
            // The SYN never passes the checksum, so accept times out.
            assert!(l.accept(ctx, 3_000_000_000).is_err());
        })
        .unwrap();
    });
    sim.spawn(kernels[0].host(), move |ctx| {
        with_concrete::<Tcp, _>(&ctx.kernel(), "tcp", |t| {
            *o2.lock() = t.connect(ctx, server_ip, 80).err();
        })
        .unwrap();
    });
    let r = sim.run_until_idle();
    assert!(
        matches!(*outcome.lock(), Some(XError::Timeout(_))),
        "connect must fail: {:?}",
        outcome.lock()
    );
    assert_eq!(r.blocked, 0);
}

#[test]
fn sprite_rpc_is_immune_to_frame_padding() {
    // Protocols that carry their own lengths were "designed so they can be
    // composed with any protocol that offers the same level of service" —
    // the same padded wire does not bother monolithic Sprite RPC over VIP.
    let (sim, _net, kernels) = padded_rig(xrpc::stacks::M_RPC_VIP.graph);
    xrpc::procs::register_standard(&kernels[1], "mrpc").unwrap();
    let server_ip = IpAddr::new(10, 0, 0, 2);
    let out: Arc<Mutex<Option<Vec<u8>>>> = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    sim.spawn(kernels[0].host(), move |ctx| {
        let k = ctx.kernel();
        let r = xrpc::call(
            ctx,
            &k,
            "mrpc",
            server_ip,
            xrpc::procs::ECHO_PROC,
            b"tiny".to_vec(),
        )
        .unwrap();
        *o2.lock() = Some(r);
    });
    let r = sim.run_until_idle();
    assert_eq!(
        out.lock().take().unwrap(),
        b"tiny",
        "padded frames trimmed via data1_sz"
    );
    assert_eq!(r.blocked, 0);
}
