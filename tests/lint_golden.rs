//! Golden-diagnostic tests for `xk-lint`: every rule exercised against the
//! *real* registry contracts (not the synthetic vocabulary the unit tests
//! in `xkernel::lint` use), plus the checked-in specs under `specs/`.

use xkernel::graph::GraphArgs;
use xkernel::lint::{
    rules, AddrKind, BlockPoint, Diagnostic, LintOptions, ProtoContract, SemaContract, Severity,
};
use xkernel::prelude::*;
use xkernel_repro::{default_externals, full_registry};

fn lint(spec: &str) -> Vec<Diagnostic> {
    full_registry().lint(spec, &default_externals(), &LintOptions::default())
}

fn has(diags: &[Diagnostic], rule: &str, severity: Severity, instance: &str) -> bool {
    diags
        .iter()
        .any(|d| d.rule == rule && d.severity == severity && d.instance == instance)
}

const BASE: &str = "eth -> nic0\narp ip=10.0.0.1 -> eth\nip -> eth arp\n";

#[test]
fn xk001_parse_error() {
    let d = lint("eth extra tokens no arrow\n");
    let hit = d.iter().find(|d| d.rule == rules::PARSE).expect("XK001");
    assert_eq!(hit.severity, Severity::Error);
    assert_eq!(hit.line, 1);
}

#[test]
fn xk002_unknown_ctor() {
    let d = lint("mystery -> nic0\n");
    assert!(
        has(&d, rules::UNKNOWN_CTOR, Severity::Error, "mystery"),
        "{d:?}"
    );
}

#[test]
fn xk003_forward_reference_breaks_bottom_up_wiring() {
    // channel names fragment before fragment exists: the graph must be
    // built bottom-up, so this can never instantiate.
    let d = lint(&format!("{BASE}channel -> fragment\nfragment -> ip\n"));
    assert!(
        has(&d, rules::UNKNOWN_LOWER, Severity::Error, "channel"),
        "{d:?}"
    );
}

#[test]
fn xk004_duplicate_instance() {
    let d = lint(&format!("{BASE}udp -> ip\nudp -> ip\n"));
    assert!(
        has(&d, rules::DUPLICATE_INSTANCE, Severity::Error, "udp"),
        "{d:?}"
    );
}

#[test]
fn xk005_arity_missing_and_dangling() {
    // ip needs its resolver capability alongside the hardware one.
    let d = lint("eth -> nic0\nip -> eth\n");
    assert!(has(&d, rules::LOWER_ARITY, Severity::Error, "ip"), "{d:?}");
    // udp takes exactly one lower; the second is dangling.
    let d = lint(&format!("{BASE}icmp -> ip\nudp -> ip icmp\n"));
    assert!(
        has(&d, rules::LOWER_ARITY, Severity::Warning, "udp"),
        "{d:?}"
    );
}

#[test]
fn xk006_address_kind_mismatch() {
    // udp demuxes on internet addresses; eth offers hardware ones.
    let d = lint("eth -> nic0\nudp -> eth\n");
    assert!(has(&d, rules::ADDR_KIND, Severity::Error, "udp"), "{d:?}");
}

#[test]
fn xk007_stable_participants_over_identity_virtualizer() {
    // The acceptance case: tcp -> vip rejected citing the §5 rule.
    let d = lint(&format!("{BASE}vip -> ip eth arp\ntcp -> vip\n"));
    let hit = d
        .iter()
        .find(|d| d.rule == rules::STABLE_OVER_VIRTUAL)
        .expect("XK007 fires");
    assert_eq!(hit.severity, Severity::Error);
    assert_eq!(hit.instance, "tcp");
    assert!(
        hit.message.contains("stable participant"),
        "{}",
        hit.message
    );
    assert!(hit.message.contains("vip"), "{}", hit.message);
    // Same rule through an interposed passthrough layer: still caught.
    let d = lint(&format!(
        "{BASE}vip -> ip eth arp\nnl: null -> vip\ntcp -> nl\n"
    ));
    assert!(
        has(&d, rules::STABLE_OVER_VIRTUAL, Severity::Error, "tcp"),
        "{d:?}"
    );
}

#[test]
fn xk008_header_budget_warning_and_suppression() {
    // 25 null layers x 4 bytes on top of eth+ip (34) = 134 > the 128-byte
    // message headroom: every push re-allocates.
    let mut spec = String::from(BASE);
    let mut lower = "ip".to_string();
    for i in 0..25 {
        spec.push_str(&format!("n{i}: null -> {lower}\n"));
        lower = format!("n{i}");
    }
    let d = lint(&spec);
    assert!(
        d.iter()
            .any(|d| d.rule == rules::HEADER_BUDGET && d.severity == Severity::Warning),
        "{d:?}"
    );
    // The in-spec directive silences it.
    let d = lint(&format!("# xk-lint: allow=XK008\n{spec}"));
    assert!(d.is_empty(), "{d:?}");
}

#[test]
fn xk009_param_schema() {
    // arp without its required ip= address.
    let d = lint("eth -> nic0\narp -> eth\n");
    assert!(
        has(&d, rules::PARAM_SCHEMA, Severity::Error, "arp"),
        "{d:?}"
    );
    // Unknown key: typo'd forward= on ip.
    let d = lint("eth -> nic0\narp ip=10.0.0.1 -> eth\nip forwrad=1 -> eth arp\n");
    assert!(
        has(&d, rules::PARAM_SCHEMA, Severity::Warning, "ip"),
        "{d:?}"
    );
}

#[test]
fn xk010_deadlocked_shepherd_is_an_error() {
    // A layer that blocks a shepherd on a reply semaphore its demux never
    // signals: the lock-order bug the paper's shepherd discipline forbids.
    let mut reg = full_registry();
    reg.add_contract(
        ProtoContract::new("stuck", AddrKind::Rpc)
            .lower(&[AddrKind::Internet])
            .sema(SemaContract {
                acquires_pool: false,
                awaits_reply: true,
                wakes_from_demux: false,
            }),
    );
    reg.add("stuck", |_a: &GraphArgs<'_>| {
        Err(XError::Config("lint-only constructor".into()))
    });
    let d = reg.lint(
        &format!("{BASE}stuck -> ip\n"),
        &default_externals(),
        &LintOptions::default(),
    );
    let hit = d
        .iter()
        .find(|d| d.rule == rules::SEMA_DISCIPLINE && d.severity == Severity::Error)
        .expect("XK010 error fires");
    assert_eq!(hit.instance, "stuck");
    assert!(hit.message.contains("deadlock"), "{}", hit.message);
}

#[test]
fn xk010_nested_reply_waiters_warn() {
    // request_reply already owns a reply wait; stacking it on tcp (which
    // also blocks on its handshake/ack semaphores) nests two waiters.
    let d = lint(&format!("{BASE}tcp -> ip\nrequest_reply -> tcp\n"));
    let hit = d
        .iter()
        .find(|d| d.rule == rules::SEMA_DISCIPLINE && d.severity == Severity::Warning)
        .expect("XK010 warning fires");
    assert_eq!(hit.instance, "request_reply");
    assert!(hit.message.contains("nested"), "{}", hit.message);
}

/// A registry with one synthetic contract (and a lint-only constructor so
/// XK002 stays quiet) grafted onto the real vocabulary.
fn with_contract(c: ProtoContract) -> xkernel::graph::ProtocolRegistry {
    let mut reg = full_registry();
    let name = c.name.clone();
    reg.add_contract(c);
    reg.add(&name, |_a: &GraphArgs<'_>| {
        Err(XError::Config("lint-only constructor".into()))
    });
    reg
}

fn lint_with(c: ProtoContract, spec: &str) -> Vec<Diagnostic> {
    with_contract(c).lint(spec, &default_externals(), &LintOptions::default())
}

#[test]
fn xk011_reply_wait_without_slot_release_guarantee() {
    // Blocks on a reply semaphore but never audited its error paths: the
    // slot-leak class the channel layer was fixed for by hand.
    let d = lint_with(
        ProtoContract::new("leaky", AddrKind::Rpc)
            .lower(&[AddrKind::Internet])
            .sema(SemaContract {
                acquires_pool: false,
                awaits_reply: true,
                wakes_from_demux: true,
            })
            .blocks(&[BlockPoint::Sema, BlockPoint::Timer]),
        &format!("{BASE}leaky -> ip\n"),
    );
    assert!(
        has(&d, rules::WAIT_HOLDING_SLOT, Severity::Error, "leaky"),
        "{d:?}"
    );
    let hit = d
        .iter()
        .find(|d| d.rule == rules::WAIT_HOLDING_SLOT)
        .unwrap();
    assert!(hit.message.contains("leaks the channel"), "{}", hit.message);
}

#[test]
fn xk012_demux_signalled_wait_with_no_device_below() {
    // floaty's reply semaphore is signalled from demux, but its whole lower
    // subtree is `isle`, which produces internet addresses out of thin air:
    // no frame can ever arrive to run the signaler.
    let mut reg = with_contract(ProtoContract::new("isle", AddrKind::Internet));
    reg.add_contract(
        ProtoContract::new("floaty", AddrKind::Rpc)
            .lower(&[AddrKind::Internet])
            .sema(SemaContract {
                acquires_pool: false,
                awaits_reply: true,
                wakes_from_demux: true,
            })
            .blocks(&[BlockPoint::Sema, BlockPoint::Timer])
            .clears_slot_on_error(),
    );
    reg.add("floaty", |_a: &GraphArgs<'_>| {
        Err(XError::Config("lint-only constructor".into()))
    });
    let d = reg.lint(
        "isle\nfloaty -> isle\n",
        &default_externals(),
        &LintOptions::default(),
    );
    assert!(
        has(&d, rules::SIGNAL_PATH, Severity::Error, "floaty"),
        "{d:?}"
    );
}

#[test]
fn xk013_undeclared_blocking_points() {
    // Awaits a reply (implying Sema + Timer blocking points) but declares
    // no blocks() at all.
    let d = lint_with(
        ProtoContract::new("mute", AddrKind::Rpc)
            .lower(&[AddrKind::Internet])
            .sema(SemaContract {
                acquires_pool: false,
                awaits_reply: true,
                wakes_from_demux: true,
            })
            .clears_slot_on_error(),
        &format!("{BASE}mute -> ip\n"),
    );
    let hit = d
        .iter()
        .find(|d| d.rule == rules::BLOCK_DECL && d.severity == Severity::Error)
        .expect("XK013 fires");
    assert_eq!(hit.instance, "mute");
    assert!(hit.message.contains("Sema"), "{}", hit.message);
    assert!(hit.message.contains("Timer"), "{}", hit.message);
}

#[test]
fn xk014_excess_wire_declaration() {
    // Declares a wire blocking point with no device-kind lower slot.
    let d = lint_with(
        ProtoContract::new("nowire", AddrKind::Rpc)
            .lower(&[AddrKind::Internet])
            .blocks(&[BlockPoint::Wire]),
        &format!("{BASE}nowire -> ip\n"),
    );
    assert!(
        has(&d, rules::BLOCK_DECL_EXCESS, Severity::Warning, "nowire"),
        "{d:?}"
    );
}

#[test]
fn xk015_conflicting_lock_orders_via_the_deadlock_toy() {
    // The xcheck deadlock toy pair is registered in the full registry:
    // dl_ab declares sem_a < sem_b, dl_ba the reverse — the merged order
    // relation is cyclic.
    let d = lint("ab: dl_ab\nba: dl_ba -> ab\n");
    let hit = d
        .iter()
        .find(|d| d.rule == rules::LOCK_ORDER && d.severity == Severity::Error)
        .expect("XK015 fires");
    assert!(
        hit.message.contains("dl.sem_a") && hit.message.contains("dl.sem_b"),
        "{}",
        hit.message
    );
}

#[test]
fn xk016_crashable_without_reboot_hook() {
    let d = lint_with(
        ProtoContract::new("fragile", AddrKind::Rpc)
            .lower(&[AddrKind::Internet])
            .crashable(),
        &format!("{BASE}fragile -> ip\n"),
    );
    assert!(
        has(&d, rules::REBOOT_HOOKS, Severity::Error, "fragile"),
        "{d:?}"
    );
}

#[test]
fn checked_in_specs_match_expectations() {
    let reg = full_registry();
    let externals = default_externals();
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let read = |sub: &str| -> Vec<(String, String)> {
        let mut out: Vec<(String, String)> = std::fs::read_dir(dir.join(sub))
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "xk"))
            .map(|p| {
                (
                    p.display().to_string(),
                    std::fs::read_to_string(&p).unwrap(),
                )
            })
            .collect();
        out.sort();
        assert!(!out.is_empty(), "no .xk specs under specs/{sub}");
        out
    };
    for (path, spec) in read("good") {
        let d = reg.lint(&spec, &externals, &LintOptions::default());
        assert!(d.is_empty(), "{path} should lint clean:\n{d:?}");
    }
    for (path, spec) in read("bad") {
        let d = reg.lint(&spec, &externals, &LintOptions::default());
        assert!(
            d.iter().any(|d| d.severity == Severity::Error),
            "{path} should produce at least one error"
        );
    }
    // The bad specs name the rule they demonstrate in their comments.
    let tcp = std::fs::read_to_string(dir.join("bad/tcp-over-vip.xk")).unwrap();
    let d = reg.lint(&tcp, &externals, &LintOptions::default());
    assert!(
        d.iter().any(|d| d.rule == rules::STABLE_OVER_VIRTUAL),
        "{d:?}"
    );
    let mis = std::fs::read_to_string(dir.join("bad/miswired.xk")).unwrap();
    let d = reg.lint(&mis, &externals, &LintOptions::default());
    for rule in [
        rules::ADDR_KIND,
        rules::UNKNOWN_LOWER,
        rules::PARAM_SCHEMA,
        rules::LOWER_ARITY,
    ] {
        assert!(d.iter().any(|d| d.rule == rule), "{rule} missing: {d:?}");
    }
    let dl = std::fs::read_to_string(dir.join("bad/deadlock-toy.xk")).unwrap();
    let d = reg.lint(&dl, &externals, &LintOptions::default());
    assert!(
        d.iter()
            .any(|d| d.rule == rules::LOCK_ORDER && d.severity == Severity::Error),
        "deadlock-toy.xk should trip XK015: {d:?}"
    );
}
