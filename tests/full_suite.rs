//! The whole suite co-resident in one kernel pair: monolithic Sprite RPC,
//! layered Sprite RPC, Sun RPC, and Psync running side by side — with a
//! single shared FRAGMENT instance serving CHANNEL, REQUEST_REPLY, and
//! Psync at once. This is the decomposition thesis end-to-end: "existing
//! protocol pieces can be reused", through real demultiplexing on
//! FRAGMENT's protocol-number field, under a lossy wire.

use std::sync::Arc;

use parking_lot::Mutex;

use inet::testbed::{base_registry, two_hosts};
use inet::with_concrete;
use simnet::fault::FaultPlan;
use sunrpc::sunselect::SunSelect;
use xkernel::sim::SimConfig;
use xrpc::fragment::Fragment;

const GRAPH: &str = "\
    vip -> ip eth arp\n\
    fragment -> vip\n\
    channel -> fragment\n\
    select -> channel\n\
    mrpc: sprite -> vip\n\
    request_reply -> fragment\n\
    sunselect -> request_reply\n\
    psync -> fragment\n";

#[test]
fn every_stack_coexists_and_shares_fragment() {
    let mut reg = base_registry();
    xrpc::register_ctors(&mut reg);
    sunrpc::register_ctors(&mut reg);
    psync::register_ctors(&mut reg);
    let tb = two_hosts(SimConfig::scheduled(), &reg, GRAPH).expect("testbed builds");

    // Services on the server.
    xrpc::procs::register_standard(&tb.server, "select").unwrap();
    xrpc::procs::register_standard(&tb.server, "mrpc").unwrap();
    with_concrete::<SunSelect, _>(&tb.server, "sunselect", |s| {
        s.serve(100003, 2, 1, |_ctx, msg| Ok(msg));
    })
    .unwrap();
    let conv_server = with_concrete::<psync::Psync, _>(&tb.server, "psync", |p| {
        p.open_conv(&tb.sim.ctx(tb.server.host()), 1, vec![tb.client_ip])
    })
    .unwrap();
    let conv_client = with_concrete::<psync::Psync, _>(&tb.client, "psync", |p| {
        p.open_conv(&tb.sim.ctx(tb.client.host()), 1, vec![tb.server_ip])
    })
    .unwrap();

    // A mildly hostile wire for everyone at once.
    tb.net.set_faults(
        tb.lan,
        FaultPlan {
            drop_per_mille: 25,
            dup_per_mille: 10,
            ..FaultPlan::default()
        },
    );

    let server_ip = tb.server_ip;
    let results: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));

    // Client 1: layered RPC with a 12 k echo.
    let r = Arc::clone(&results);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        let body: Vec<u8> = (0..12_000).map(|i| (i % 251) as u8).collect();
        let echoed = xrpc::call(
            ctx,
            &k,
            "select",
            server_ip,
            xrpc::procs::ECHO_PROC,
            body.clone(),
        )
        .unwrap();
        assert_eq!(echoed, body);
        r.lock().push("l_rpc".into());
    });
    // Client 2: monolithic RPC, several small calls.
    let r = Arc::clone(&results);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        for i in 0..5u8 {
            let echoed = xrpc::call(
                ctx,
                &k,
                "mrpc",
                server_ip,
                xrpc::procs::ECHO_PROC,
                vec![i; 100],
            )
            .unwrap();
            assert_eq!(echoed, vec![i; 100]);
        }
        r.lock().push("m_rpc".into());
    });
    // Client 3: Sun RPC over the *same* FRAGMENT instance.
    let r = Arc::clone(&results);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        with_concrete::<SunSelect, _>(&ctx.kernel(), "sunselect", |s| {
            let body: Vec<u8> = (0..9_000).map(|i| (i % 97) as u8).collect();
            let echoed = s.call(ctx, server_ip, 100003, 2, 1, body.clone()).unwrap();
            assert_eq!(echoed, body);
        })
        .unwrap();
        r.lock().push("sun_rpc".into());
    });
    // Client 4: a Psync exchange, also over the shared FRAGMENT.
    let r = Arc::clone(&results);
    let cc = Arc::clone(&conv_client);
    tb.sim.spawn(tb.client.host(), move |ctx| {
        cc.send(ctx, vec![0xEE; 5_000]).unwrap();
        let reply = cc.receive(ctx, 10_000_000_000).unwrap();
        assert_eq!(reply.data, b"ack".to_vec());
        r.lock().push("psync".into());
    });
    let cs = Arc::clone(&conv_server);
    tb.sim.spawn(tb.server.host(), move |ctx| {
        let m = cs.receive(ctx, 10_000_000_000).unwrap();
        assert_eq!(m.data.len(), 5_000);
        cs.send(ctx, b"ack".to_vec()).unwrap();
    });

    let report = tb.sim.run_until_idle();
    assert_eq!(report.blocked, 0);
    let mut done = results.lock().clone();
    done.sort();
    assert_eq!(done, vec!["l_rpc", "m_rpc", "psync", "sun_rpc"]);

    // The reuse claim, verified structurally: ONE fragment protocol moved
    // messages for three different upper protocols (CHANNEL=103,
    // PSYNC=104, REQUEST_REPLY=105), demultiplexing on its own
    // protocol-number field.
    let stats = with_concrete::<Fragment, _>(&tb.client, "fragment", |f| f.stats()).unwrap();
    assert!(
        stats.messages_sent >= 3,
        "client FRAGMENT carried messages for multiple uppers: {stats:?}"
    );
    let server_stats = with_concrete::<Fragment, _>(&tb.server, "fragment", |f| f.stats()).unwrap();
    assert!(server_stats.messages_delivered >= 3);
}

#[test]
fn concurrent_clients_share_channel_pools_under_loss() {
    let mut reg = base_registry();
    xrpc::register_ctors(&mut reg);
    let graph = "vip -> ip eth arp\n\
                 fragment -> vip\n\
                 channel -> fragment\n\
                 select channels=3 -> channel\n";
    let tb = two_hosts(SimConfig::scheduled(), &reg, graph).expect("testbed builds");
    xrpc::procs::register_standard(&tb.server, "select").unwrap();
    let hits = Arc::new(Mutex::new(0u32));
    let h2 = Arc::clone(&hits);
    xrpc::serve(&tb.server, "select", 9, move |ctx, msg| {
        *h2.lock() += 1;
        ctx.sleep(2_000_000); // A little service time to force pool pressure.
        Ok(msg)
    })
    .unwrap();
    // Warm, then make the wire lossy.
    let server_ip = tb.server_ip;
    tb.sim.spawn(tb.client.host(), move |ctx| {
        let k = ctx.kernel();
        xrpc::call(
            ctx,
            &k,
            "select",
            server_ip,
            xrpc::procs::NULL_PROC,
            Vec::new(),
        )
        .unwrap();
    });
    assert_eq!(tb.sim.run_until_idle().blocked, 0);
    tb.net.set_faults(tb.lan, FaultPlan::lossy(60));

    let completed = Arc::new(Mutex::new(0u32));
    for i in 0..10u32 {
        let c = Arc::clone(&completed);
        tb.sim.spawn(tb.client.host(), move |ctx| {
            let k = ctx.kernel();
            let body = vec![i as u8; 200];
            let echoed = xrpc::call(ctx, &k, "select", server_ip, 9, body.clone()).unwrap();
            assert_eq!(echoed, body);
            *c.lock() += 1;
        });
    }
    let report = tb.sim.run_until_idle();
    assert_eq!(report.blocked, 0);
    assert_eq!(
        *completed.lock(),
        10,
        "10 concurrent callers over 3 channels"
    );
    assert_eq!(*hits.lock(), 10, "at-most-once held under pool contention");
}
